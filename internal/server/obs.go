package server

import (
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/instrument"
	"repro/internal/telemetry"
)

// Obs is the server's request-observability state: per-verb latency
// histograms (read-complete to write-flushed, with coalesced-batch size
// as a dimension), per-verb batch-size histograms, a queue-wait
// histogram, and a lock-free ring of sampled operation traces. It turns
// the paper's cost split O(n(S) + c(S)) into live serving-path numbers:
// the latency histograms show the totals and tails, and a sampled trace
// attributes one operation's cost to its components — CAS attempts and
// backoff waits are the contention term c(S), finger hits/misses and
// essential steps the traversal term n(S).
//
// Attach to a Server with SetObs before serving. All recording methods
// are lock-free, allocation-free, and safe for concurrent use; reading
// (snapshots, Prometheus rendering, the trace handler) can run while
// connections record.
type Obs struct {
	seq        atomic.Uint64
	sampleMask uint64
	slowNanos  int64
	keyMask    int64
	ring       *instrument.TraceRing

	lat    [NumVerbs][NumBatchClasses]instrument.Hist
	batch  [NumVerbs]instrument.Hist
	queue  instrument.Hist
	flush  instrument.Hist
	gbatch instrument.Hist
	gwait  instrument.Hist
}

// ObsConfig bounds an Obs. The zero value is usable: every field falls
// back to the default documented on it.
type ObsConfig struct {
	// SampleEvery is the trace sampling period: one unit of work (a point
	// command or one coalesced batch) in every SampleEvery is traced with
	// exact step attribution. Rounded up to a power of two; 1 traces every
	// unit (default 64).
	SampleEvery int
	// SlowThreshold is the store-execution wall time above which a unit is
	// always traced (and counted in cmds_slow), sampled or not
	// (default 10ms).
	SlowThreshold time.Duration
	// TraceCap is the trace ring capacity, rounded up to a power of two
	// (default 1024).
	TraceCap int
	// KeyMaskBits is how many low key bits are zeroed in trace records, so
	// a trace names a key neighbourhood rather than an exact key
	// (default 8).
	KeyMaskBits int
}

// NewObs returns an Obs with the given config.
func NewObs(cfg ObsConfig) *Obs {
	if cfg.SampleEvery <= 0 {
		cfg.SampleEvery = 64
	}
	period := 1
	for period < cfg.SampleEvery {
		period <<= 1
	}
	if cfg.SlowThreshold <= 0 {
		cfg.SlowThreshold = 10 * time.Millisecond
	}
	if cfg.TraceCap <= 0 {
		cfg.TraceCap = 1024
	}
	if cfg.KeyMaskBits <= 0 {
		cfg.KeyMaskBits = 8
	}
	if cfg.KeyMaskBits > 62 {
		cfg.KeyMaskBits = 62
	}
	o := &Obs{
		slowNanos: cfg.SlowThreshold.Nanoseconds(),
		keyMask:   int64(1)<<cfg.KeyMaskBits - 1,
		ring:      instrument.NewTraceRing(cfg.TraceCap),
	}
	o.sampleMask = uint64(period - 1)
	return o
}

// sampleNext reports whether the next unit of work is trace-sampled.
func (o *Obs) sampleNext() bool { return o.seq.Add(1)&o.sampleMask == 0 }

// maskKey reduces a key to its trace neighbourhood prefix.
func (o *Obs) maskKey(key int) int64 { return int64(key) &^ o.keyMask }

// Batch-size classes: the coalescing dimension of the latency histograms.
// Class 0 is an un-coalesced point command; the others are coalesced runs
// by size. Interned labels, like the verb labels, keep recording 0-alloc.
const NumBatchClasses = 4

var batchClassLabels = [NumBatchClasses]string{"1", "2-15", "16-63", "64+"}

// batchClass maps a unit's command count to its class index.
func batchClass(n int) int {
	switch {
	case n <= 1:
		return 0
	case n < 16:
		return 1
	case n < 64:
		return 2
	default:
		return 3
	}
}

// recordLatency records n commands of verb v, executed as one unit of
// class class, each observing the same read-complete-to-write-flushed
// latency nanos.
func (o *Obs) recordLatency(v Verb, class int, nanos int64, n uint64) {
	o.lat[v][class].RecordN(nanos, n)
}

// recordBatch records one unit's command count under its verb.
func (o *Obs) recordBatch(v Verb, n int) { o.batch[v].Record(int64(n)) }

// recordQueueWait records one run's reader-to-writer hand-off wait.
func (o *Obs) recordQueueWait(nanos int64) { o.queue.Record(nanos) }

// recordFlush records the byte size of one vectored reply flush — the
// payoff histogram of write coalescing: a healthy pipelined workload
// shows flushes many replies wide, an interactive one hovers near a
// single reply's size.
func (o *Obs) recordFlush(bytes int64) { o.flush.Record(bytes) }

// recordGroupBatch records the unit count of one cross-connection group
// batch — the payoff histogram of group batching: sizes near 1 mean the
// window closes before traffic clusters, larger sizes mean the amortized
// bound is being paid once per group rather than once per connection.
func (o *Obs) recordGroupBatch(n int) { o.gbatch.Record(int64(n)) }

// recordGroupWait records one unit's publish-to-execute wait inside a
// submission ring — the latency cost the group-batching window trades
// for amortization; bounded by ~BatchWindow under load.
func (o *Obs) recordGroupWait(nanos int64) { o.gwait.Record(nanos) }

// VerbLatency returns the latency snapshot of one verb, merged across
// batch-size classes.
func (o *Obs) VerbLatency(v Verb) instrument.HistSnapshot {
	s := o.lat[v][0].Snapshot()
	for c := 1; c < NumBatchClasses; c++ {
		s = s.Merge(o.lat[v][c].Snapshot())
	}
	return s
}

// QueueWait returns the queue-wait snapshot.
func (o *Obs) QueueWait() instrument.HistSnapshot { return o.queue.Snapshot() }

// FlushBytes returns the reply-flush size snapshot.
func (o *Obs) FlushBytes() instrument.HistSnapshot { return o.flush.Snapshot() }

// GroupBatchSize returns the cross-connection group-batch size snapshot.
func (o *Obs) GroupBatchSize() instrument.HistSnapshot { return o.gbatch.Snapshot() }

// GroupWait returns the group-batching publish-to-execute wait snapshot.
func (o *Obs) GroupWait() instrument.HistSnapshot { return o.gwait.Snapshot() }

// TraceSnapshot returns up to max of the newest trace records (0 = all
// retained), newest first.
func (o *Obs) TraceSnapshot(max int) []instrument.TraceRecord {
	return o.ring.Snapshot(max)
}

// WritePrometheus renders the observability state in Prometheus text
// exposition format: cumulative-le histograms (the coarse per-octave
// bucket view — quantile math keeps the full sub-bucket resolution) for
// per-verb latency by batch class, per-verb batch size, and queue wait.
// Series render only for (verb, class) combinations that have data, so
// the output stays proportional to the traffic actually seen.
func (o *Obs) WritePrometheus(w io.Writer) error {
	ew := &obsErrWriter{w: w}
	bounds := instrument.OctaveBounds()

	ew.writeString("# HELP lockfree_server_cmd_latency_seconds Server-side command latency (read-complete to write-flushed) by verb and coalesced-batch size class.\n")
	ew.writeString("# TYPE lockfree_server_cmd_latency_seconds histogram\n")
	for v := 0; v < NumVerbs; v++ {
		for c := 0; c < NumBatchClasses; c++ {
			s := o.lat[v][c].Snapshot()
			if s.Count == 0 {
				continue
			}
			labels := `{verb="` + Verb(v).Label() + `",batch="` + batchClassLabels[c] + `"`
			writeHistSeries(ew, "lockfree_server_cmd_latency_seconds", labels, s, bounds[:], true)
		}
	}

	ew.writeString("# HELP lockfree_server_cmd_batch_size Commands per executed unit of work by verb (1 = un-coalesced).\n")
	ew.writeString("# TYPE lockfree_server_cmd_batch_size histogram\n")
	for v := 0; v < NumVerbs; v++ {
		s := o.batch[v].Snapshot()
		if s.Count == 0 {
			continue
		}
		labels := `{verb="` + Verb(v).Label() + `"`
		writeHistSeries(ew, "lockfree_server_cmd_batch_size", labels, s, bounds[:], false)
	}

	ew.writeString("# HELP lockfree_server_queue_wait_seconds Reader-to-writer hand-off wait of pipelined runs.\n")
	ew.writeString("# TYPE lockfree_server_queue_wait_seconds histogram\n")
	if s := o.queue.Snapshot(); s.Count > 0 {
		writeHistSeries(ew, "lockfree_server_queue_wait_seconds", "{", s, bounds[:], true)
	}

	ew.writeString("# HELP lockfree_server_flush_bytes Reply bytes per vectored flush (one flush per coalesced run).\n")
	ew.writeString("# TYPE lockfree_server_flush_bytes histogram\n")
	if s := o.flush.Snapshot(); s.Count > 0 {
		writeHistSeries(ew, "lockfree_server_flush_bytes", "{", s, bounds[:], false)
	}

	ew.writeString("# HELP lockfree_server_group_batch_size Command units per cross-connection group batch (group-batching mode).\n")
	ew.writeString("# TYPE lockfree_server_group_batch_size histogram\n")
	if s := o.gbatch.Snapshot(); s.Count > 0 {
		writeHistSeries(ew, "lockfree_server_group_batch_size", "{", s, bounds[:], false)
	}

	ew.writeString("# HELP lockfree_server_group_wait_seconds Publish-to-execute wait of command units in group-batching submission rings.\n")
	ew.writeString("# TYPE lockfree_server_group_wait_seconds histogram\n")
	if s := o.gwait.Snapshot(); s.Count > 0 {
		writeHistSeries(ew, "lockfree_server_group_wait_seconds", "{", s, bounds[:], true)
	}

	ew.writeString("# HELP lockfree_server_trace_records_total Operation trace records written to the sampling ring.\n")
	ew.writeString("# TYPE lockfree_server_trace_records_total counter\n")
	ew.writeString("lockfree_server_trace_records_total " + strconv.FormatUint(o.ring.Written(), 10) + "\n")
	return ew.err
}

// writeHistSeries renders one histogram as cumulative le buckets plus
// _sum and _count. labels is the rendered label set missing its closing
// brace ("{" alone for a label-free series); seconds scales nanosecond
// bounds and sums into seconds. Empty octave cells render only when a
// later cell has data, keeping each series' bucket list short but still
// cumulative and +Inf-terminated.
func writeHistSeries(w *obsErrWriter, name, labels string, s instrument.HistSnapshot, bounds []int64, seconds bool) {
	oct := s.Octaves()
	// Find the last non-empty finite cell; buckets past it add nothing.
	last := -1
	for i := 0; i < len(oct)-1; i++ {
		if oct[i] != 0 {
			last = i
		}
	}
	sep := ","
	if labels == "{" {
		sep = ""
	}
	var cum uint64
	for i := 0; i <= last; i++ {
		cum += oct[i]
		var le string
		if seconds {
			le = strconv.FormatFloat(float64(bounds[i])/1e9, 'g', -1, 64)
		} else {
			le = strconv.FormatInt(bounds[i], 10)
		}
		w.writeString(name + "_bucket" + labels + sep + `le="` + le + `"} ` + strconv.FormatUint(cum, 10) + "\n")
	}
	cum += oct[len(oct)-1]
	w.writeString(name + "_bucket" + labels + sep + `le="+Inf"} ` + strconv.FormatUint(cum, 10) + "\n")
	var sum string
	if seconds {
		sum = strconv.FormatFloat(float64(s.Sum)/1e9, 'g', -1, 64)
	} else {
		sum = strconv.FormatUint(s.Sum, 10)
	}
	closeLabels := ""
	if labels != "{" {
		closeLabels = "}"
	}
	labelPart := labels + closeLabels
	if labels == "{" {
		labelPart = ""
	}
	w.writeString(name + "_sum" + labelPart + " " + sum + "\n")
	w.writeString(name + "_count" + labelPart + " " + strconv.FormatUint(s.Count, 10) + "\n")
}

// MetricsHandler serves WritePrometheus over HTTP; register it as a
// collector next to the structure-level telemetry handler.
func (o *Obs) MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		o.WritePrometheus(w)
	})
}

// traceJSON is the wire form of one trace record at /debug/trace.
type traceJSON struct {
	Verb           string `json:"verb"`
	Sampled        bool   `json:"sampled"`
	Slow           bool   `json:"slow"`
	KeyPrefix      int64  `json:"key_prefix"`
	Batch          int64  `json:"batch"`
	WallNanos      int64  `json:"wall_ns"`
	QueueNanos     int64  `json:"queue_ns"`
	AgeNanos       int64  `json:"age_ns"`
	CASAttempts    uint64 `json:"cas_attempts"`
	CASSuccesses   uint64 `json:"cas_successes"`
	BackoffWaits   uint64 `json:"backoff_waits"`
	FingerHits     uint64 `json:"finger_hits"`
	FingerMisses   uint64 `json:"finger_misses"`
	EssentialSteps uint64 `json:"essential_steps"`
}

// TraceHandler serves the sampled trace ring as JSON: an object with the
// ring's totals and the retained records newest-first. ?n=K limits the
// response to the K newest records.
func (o *Obs) TraceHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		max := 0
		if q := r.URL.Query().Get("n"); q != "" {
			n, err := strconv.Atoi(q)
			if err != nil || n < 0 {
				http.Error(w, "n must be a non-negative integer", http.StatusBadRequest)
				return
			}
			max = n
		}
		recs := o.ring.Snapshot(max)
		now := telemetry.Nanotime()
		out := struct {
			Written  uint64      `json:"written"`
			Capacity int         `json:"capacity"`
			Records  []traceJSON `json:"records"`
		}{Written: o.ring.Written(), Capacity: o.ring.Cap(), Records: make([]traceJSON, 0, len(recs))}
		for _, rec := range recs {
			out.Records = append(out.Records, traceJSON{
				Verb:           Verb(rec.Verb).Label(),
				Sampled:        rec.Sampled,
				Slow:           rec.Slow,
				KeyPrefix:      rec.Key,
				Batch:          rec.Batch,
				WallNanos:      rec.WallNanos,
				QueueNanos:     rec.QueueNanos,
				AgeNanos:       now - rec.At,
				CASAttempts:    rec.CASAttempts,
				CASSuccesses:   rec.CASSuccesses,
				BackoffWaits:   rec.BackoffWaits,
				FingerHits:     rec.FingerHits,
				FingerMisses:   rec.FingerMisses,
				EssentialSteps: rec.EssentialSteps,
			})
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(out)
	})
}

// trace assembles and writes one trace record from a finished unit.
// stats is nil for units captured without attribution (slow-only capture,
// or verbs the store cannot attribute).
func (o *Obs) trace(v Verb, key int, batch int, wall, queueWait int64, sampled, slow bool, stats *core.OpStats) {
	rec := instrument.TraceRecord{
		At:         telemetry.Nanotime(),
		Verb:       uint32(v),
		Sampled:    sampled,
		Slow:       slow,
		Key:        o.maskKey(key),
		Batch:      int64(batch),
		WallNanos:  wall,
		QueueNanos: queueWait,
	}
	if stats != nil {
		rec.CASAttempts = stats.CASAttempts
		rec.CASSuccesses = stats.CASSuccesses
		rec.BackoffWaits = stats.BackoffWaits
		rec.FingerHits = stats.FingerHits
		rec.FingerMisses = stats.FingerMisses
		rec.EssentialSteps = stats.EssentialSteps()
	}
	o.ring.Add(&rec)
}

// obsErrWriter latches the first write error, like the telemetry
// exporter's errWriter, but writes pre-built strings (no fmt) so the
// renderer does no reflection.
type obsErrWriter struct {
	w   io.Writer
	err error
}

func (e *obsErrWriter) writeString(s string) {
	if e.err != nil {
		return
	}
	_, e.err = io.WriteString(e.w, s)
}
