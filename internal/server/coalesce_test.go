package server

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/telemetry"
	"repro/lockfree"
)

// countingStore wraps a Store and counts every call per method, so tests
// can pin exactly how a pipelined run hit the structure.
type countingStore struct {
	Store
	insert, get, delete             atomic.Int64
	insertBatch, getBatch, delBatch atomic.Int64
}

func (s *countingStore) Insert(k int, v string) bool {
	s.insert.Add(1)
	return s.Store.Insert(k, v)
}
func (s *countingStore) Get(k int) (string, bool) {
	s.get.Add(1)
	return s.Store.Get(k)
}
func (s *countingStore) Delete(k int) bool {
	s.delete.Add(1)
	return s.Store.Delete(k)
}
func (s *countingStore) InsertBatch(items []core.KV[int, string], inserted []bool) int {
	s.insertBatch.Add(1)
	return s.Store.InsertBatch(items, inserted)
}
func (s *countingStore) GetBatch(keys []int, vals []string, found []bool) int {
	s.getBatch.Add(1)
	return s.Store.GetBatch(keys, vals, found)
}
func (s *countingStore) DeleteBatch(keys []int, deleted []bool) int {
	s.delBatch.Add(1)
	return s.Store.DeleteBatch(keys, deleted)
}

// pipeConn starts a server over one end of an in-memory pipe and returns
// the client end. The pipe is synchronous, so a single client Write lands
// in the reader's buffer whole — which is what makes coalescing
// deterministic enough to assert exact call counts.
func pipeConn(t *testing.T, srv *Server) (net.Conn, *bufio.Reader) {
	t.Helper()
	cl, se := net.Pipe()
	go srv.ServeConn(se)
	t.Cleanup(func() { cl.Close() })
	return cl, bufio.NewReader(cl)
}

func mustReadLine(t *testing.T, br *bufio.Reader) string {
	t.Helper()
	line, err := br.ReadString('\n')
	if err != nil {
		t.Fatalf("reading response: %v", err)
	}
	return strings.TrimSuffix(line, "\n")
}

// TestCoalesceSetsIntoOneInsertBatch is the determinism contract of the
// coalescer: a pipelined run of N SETs written in one piece produces
// exactly ONE InsertBatch call (no point Inserts), the cmds_coalesced
// counter absorbs all N commands, and the N responses come back in
// request order.
func TestCoalesceSetsIntoOneInsertBatch(t *testing.T) {
	const n = 32
	cs := &countingStore{Store: lockfree.NewSkipList[int, string]()}
	rec := telemetry.NewRecorder(1)
	srv := New(Config{MaxBatch: 64}, cs)
	srv.SetTelemetry(rec)
	cl, br := pipeConn(t, srv)

	// Descending keys: sorted batch order is the reverse of request
	// order, so in-order responses prove the inverse permutation works.
	var req strings.Builder
	for i := 0; i < n; i++ {
		fmt.Fprintf(&req, "SET %d v%d\n", n-i, n-i)
	}
	if _, err := cl.Write([]byte(req.String())); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if got := mustReadLine(t, br); got != ":1" {
			t.Fatalf("response %d = %q, want :1", i, got)
		}
	}

	if got := cs.insertBatch.Load(); got != 1 {
		t.Fatalf("InsertBatch calls = %d, want exactly 1", got)
	}
	if got := cs.insert.Load(); got != 0 {
		t.Fatalf("point Insert calls = %d, want 0", got)
	}
	if got := rec.Snapshot().Counters.CmdsCoalesced; got != n {
		t.Fatalf("cmds_coalesced = %d, want %d", got, n)
	}

	// Now a pipelined run of GETs with distinct values, again written in
	// one piece and in descending key order: one GetBatch call, responses
	// positionally correct for each requested key.
	req.Reset()
	for i := n; i >= 1; i-- {
		fmt.Fprintf(&req, "GET %d\n", i)
	}
	if _, err := cl.Write([]byte(req.String())); err != nil {
		t.Fatal(err)
	}
	for i := n; i >= 1; i-- {
		want := fmt.Sprintf("$v%d", i)
		if got := mustReadLine(t, br); got != want {
			t.Fatalf("GET %d response = %q, want %q", i, got, want)
		}
	}
	if got := cs.getBatch.Load(); got != 1 {
		t.Fatalf("GetBatch calls = %d, want exactly 1", got)
	}
	if got := cs.get.Load(); got != 0 {
		t.Fatalf("point Get calls = %d, want 0", got)
	}
	if got := rec.Snapshot().Counters.CmdsCoalesced; got != 2*n {
		t.Fatalf("cmds_coalesced = %d, want %d", got, 2*n)
	}
}

// TestCoalesceMixedRunSplitsByVerb: a mixed pipelined run coalesces each
// maximal same-verb stretch and executes the rest singly, and responses
// stay in request order across the seams.
func TestCoalesceMixedRunSplitsByVerb(t *testing.T) {
	cs := &countingStore{Store: lockfree.NewSkipList[int, string]()}
	srv := New(Config{MaxBatch: 64}, cs)
	cl, br := pipeConn(t, srv)

	req := "SET 5 a\nSET 3 b\nSET 4 c\nPING\nGET 3\nGET 9\nDEL 4\nLEN\n"
	want := []string{":1", ":1", ":1", "+PONG", "$b", "_", ":1", ":2"}
	if _, err := cl.Write([]byte(req)); err != nil {
		t.Fatal(err)
	}
	for i, w := range want {
		if got := mustReadLine(t, br); got != w {
			t.Fatalf("response %d = %q, want %q", i, got, w)
		}
	}
	if cs.insertBatch.Load() != 1 || cs.getBatch.Load() != 1 {
		t.Fatalf("batch calls = insert %d / get %d, want 1 / 1",
			cs.insertBatch.Load(), cs.getBatch.Load())
	}
	// The lone DEL must NOT go through a batch: a one-command "batch"
	// would only pay the finger setup for nothing.
	if cs.delBatch.Load() != 0 || cs.delete.Load() != 1 {
		t.Fatalf("DEL went through calls batch=%d point=%d, want 0/1",
			cs.delBatch.Load(), cs.delete.Load())
	}
}

// TestCoalesceDuplicateKeys: duplicate keys inside one coalesced run get
// exactly one success among them (insert-if-absent semantics), whichever
// request it lands on.
func TestCoalesceDuplicateKeys(t *testing.T) {
	cs := &countingStore{Store: lockfree.NewSkipList[int, string]()}
	srv := New(Config{MaxBatch: 64}, cs)
	cl, br := pipeConn(t, srv)

	if _, err := cl.Write([]byte("SET 7 a\nSET 7 b\nSET 7 c\nSET 8 d\n")); err != nil {
		t.Fatal(err)
	}
	wins := 0
	for i := 0; i < 3; i++ {
		switch got := mustReadLine(t, br); got {
		case ":1":
			wins++
		case ":0":
		default:
			t.Fatalf("response %d = %q", i, got)
		}
	}
	if wins != 1 {
		t.Fatalf("duplicate key got %d successful SETs, want exactly 1", wins)
	}
	if got := mustReadLine(t, br); got != ":1" {
		t.Fatalf("SET 8 = %q, want :1", got)
	}
}

// TestCoalesceRespectsMaxBatch: a run longer than MaxBatch splits into
// ceil(n/max) batch calls, never one oversized call.
func TestCoalesceRespectsMaxBatch(t *testing.T) {
	cs := &countingStore{Store: lockfree.NewSkipList[int, string]()}
	srv := New(Config{MaxBatch: 8}, cs)
	cl, br := pipeConn(t, srv)

	var req strings.Builder
	const n = 20 // 8 + 8 + 4
	for i := 0; i < n; i++ {
		fmt.Fprintf(&req, "SET %d v\n", i)
	}
	if _, err := cl.Write([]byte(req.String())); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if got := mustReadLine(t, br); got != ":1" {
			t.Fatalf("response %d = %q", i, got)
		}
	}
	if got := cs.insertBatch.Load(); got != 3 {
		t.Fatalf("InsertBatch calls = %d, want 3 (runs capped at MaxBatch)", got)
	}
}
