package server

import (
	"context"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/telemetry"
	"repro/lockfree"
)

// groupSrv builds a group-batching server over store and tears its
// executor pool down at cleanup. Registered before any pipeConn, so the
// LIFO cleanup order closes client conns (draining the connections)
// before Shutdown waits on them.
func groupSrv(t *testing.T, cfg Config, store Store) *Server {
	t.Helper()
	cfg.GroupBatch = true
	srv := New(cfg, store)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	return srv
}

// gatedStore blocks every point Get until release closes, reporting each
// entry — a scheduling valve that lets a test pin an executor inside a
// store call while more units pile into its ring.
type gatedStore struct {
	Store
	entered chan struct{}
	release chan struct{}
}

func (s *gatedStore) Get(k int) (string, bool) {
	s.entered <- struct{}{}
	<-s.release
	return s.Store.Get(k)
}

// TestGroupBatchCrossConn is the determinism contract of group batching:
// units published by N different depth-1 connections while the executor
// is busy merge into ONE cross-connection GetBatch call. The gate holds
// the executor inside a first point Get; the test waits until the other
// four units are ticketed in the submission ring, then releases — the
// executor's next gather finds all four waiting.
func TestGroupBatchCrossConn(t *testing.T) {
	base := lockfree.NewSkipList[int, string]()
	for i := 0; i <= 5; i++ {
		base.Insert(i, fmt.Sprintf("v%d", i))
	}
	gated := &gatedStore{Store: base, entered: make(chan struct{}, 16), release: make(chan struct{})}
	cs := &countingStore{Store: gated}
	rec := telemetry.NewRecorder(1)
	srv := groupSrv(t, Config{BatchWindow: time.Millisecond}, cs)
	srv.SetTelemetry(rec)

	// Connection 0's lone GET occupies the executor inside the gate.
	cl0, br0 := pipeConn(t, srv)
	if _, err := cl0.Write([]byte("GET 0\n")); err != nil {
		t.Fatal(err)
	}
	<-gated.entered

	// Four more depth-1 connections publish while the executor is held.
	const n = 4
	cls := make([]net.Conn, n)
	for i := 0; i < n; i++ {
		cl, _ := pipeConn(t, srv)
		cls[i] = cl
		if _, err := cl.Write([]byte(fmt.Sprintf("GET %d\n", i+1))); err != nil {
			t.Fatal(err)
		}
	}
	ring := &srv.gb.execs[0].ring
	deadline := time.Now().Add(5 * time.Second)
	for ring.enq.Load() != n+1 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d units ticketed in the submission ring", ring.enq.Load(), n+1)
		}
		time.Sleep(100 * time.Microsecond)
	}
	close(gated.release)

	if got := mustReadLine(t, br0); got != "$v0" {
		t.Fatalf("conn 0 reply = %q, want $v0", got)
	}
	for i := 0; i < n; i++ {
		want := fmt.Sprintf("$v%d", i+1)
		br := make([]byte, len(want)+1)
		if _, err := io.ReadFull(cls[i], br); err != nil {
			t.Fatalf("conn %d read: %v", i+1, err)
		}
		if got := strings.TrimSuffix(string(br), "\n"); got != want {
			t.Fatalf("conn %d reply = %q, want %q", i+1, got, want)
		}
	}

	if got := cs.getBatch.Load(); got != 1 {
		t.Fatalf("cross-conn GetBatch calls = %d, want exactly 1", got)
	}
	if got := cs.get.Load(); got != 1 {
		t.Fatalf("point Get calls = %d, want 1 (the gated opener)", got)
	}
	if got := rec.Snapshot().Counters.UnitsGrouped; got != n {
		t.Fatalf("units_grouped = %d, want %d", got, n)
	}
}

// TestGroupBatchConnCloseInFlight is the adversary case: a connection
// dies while its unit is inside an executor's store call. The executor
// must still complete the unit (the conn object outlives its transport),
// the server must keep serving other connections, and Shutdown must
// drain cleanly.
func TestGroupBatchConnCloseInFlight(t *testing.T) {
	base := lockfree.NewSkipList[int, string]()
	base.Insert(1, "one")
	gated := &gatedStore{Store: base, entered: make(chan struct{}, 16), release: make(chan struct{})}
	srv := groupSrv(t, Config{BatchWindow: time.Millisecond}, gated)

	cl, _ := pipeConn(t, srv)
	if _, err := cl.Write([]byte("GET 1\n")); err != nil {
		t.Fatal(err)
	}
	<-gated.entered
	cl.Close() // the owner's transport dies with the unit in flight
	close(gated.release)

	// The server survives: a fresh connection round-trips.
	cl2, br2 := pipeConn(t, srv)
	if _, err := cl2.Write([]byte("GET 1\n")); err != nil {
		t.Fatal(err)
	}
	if got := mustReadLine(t, br2); got != "$one" {
		t.Fatalf("reply after in-flight close = %q, want $one", got)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	cl2.Close()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown after in-flight close: %v", err)
	}
}

// TestGroupBatchShutdownDrains: Shutdown mid-burst drops no replies — a
// burst whose Write completed (net.Pipe is synchronous, so completion
// means the server consumed it) is answered in full before the
// connection closes.
func TestGroupBatchShutdownDrains(t *testing.T) {
	const conns = 6
	const per = 32 // commands per burst, well under MaxBatch

	srv := groupSrv(t, Config{}, lockfree.NewSkipList[int, string]())

	var burst strings.Builder
	for i := 0; i < per; i++ {
		fmt.Fprintf(&burst, "SET %d v\n", i)
	}
	req := []byte(burst.String())

	sent := make([]int, conns)
	got := make([]int, conns)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < conns; i++ {
		cl, _ := pipeConn(t, srv)
		wg.Add(1)
		go func(i int, cl net.Conn) { // writer: bursts until the drain cuts the pipe
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := cl.Write(req); err != nil {
					return
				}
				sent[i] += per
			}
		}(i, cl)
		wg.Add(1)
		go func(i int, cl net.Conn) { // reader: counts reply lines until EOF
			defer wg.Done()
			buf := make([]byte, 4096)
			for {
				n, err := cl.Read(buf)
				for _, b := range buf[:n] {
					if b == '\n' {
						got[i]++
					}
				}
				if err != nil {
					return
				}
			}
		}(i, cl)
	}

	time.Sleep(20 * time.Millisecond) // land Shutdown mid-burst
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	close(stop)
	wg.Wait()

	for i := 0; i < conns; i++ {
		if sent[i] == 0 {
			t.Errorf("conn %d sent no complete burst before shutdown", i)
		}
		if got[i] != sent[i] {
			t.Errorf("conn %d: %d replies for %d accepted commands (dropped %d)",
				i, got[i], sent[i], sent[i]-got[i])
		}
	}
}

// TestGroupBatchGroupedSemantics runs the coalescer's semantic contracts
// through the grouped path on one connection: request-order replies
// across verb seams, duplicate-key insert-if-absent, and the local verbs
// (PING/LEN) observing the run's earlier writes.
func TestGroupBatchGroupedSemantics(t *testing.T) {
	srv := groupSrv(t, Config{}, lockfree.NewSkipList[int, string]())
	cl, br := pipeConn(t, srv)

	req := "SET 5 a\nSET 3 b\nSET 4 c\nPING\nGET 3\nGET 9\nDEL 4\nLEN\nSET 5 dup\nGET 5\n"
	want := []string{":1", ":1", ":1", "+PONG", "$b", "_", ":1", ":2", ":0", "$a"}
	if _, err := cl.Write([]byte(req)); err != nil {
		t.Fatal(err)
	}
	for i, w := range want {
		if gotLine := mustReadLine(t, br); gotLine != w {
			t.Fatalf("response %d = %q, want %q", i, gotLine, w)
		}
	}
}

// TestWriteValueNotLineRepresentable: a value stored through RESP with
// an embedded newline cannot be framed by the line dialect — the line
// reader gets -ERR and stays in sync, while RESP round-trips the value
// intact. RANGE applies the same rule before framing any output.
func TestWriteValueNotLineRepresentable(t *testing.T) {
	store := lockfree.NewSkipList[int, string]()
	srv := New(Config{}, store)

	// RESP connection stores a two-line value and reads it back whole.
	clR, brR := pipeConn(t, srv)
	val := "line1\nline2"
	if _, err := clR.Write([]byte(respCmd("SET", "10", val))); err != nil {
		t.Fatal(err)
	}
	if got := mustReadLine(t, brR); got != "+OK\r" {
		t.Fatalf("RESP SET reply = %q", got)
	}
	if _, err := clR.Write([]byte(respCmd("GET", "10"))); err != nil {
		t.Fatal(err)
	}
	resp := make([]byte, len("$11\r\n")+len(val)+2)
	if _, err := io.ReadFull(brR, resp); err != nil {
		t.Fatal(err)
	}
	if got := string(resp); got != "$11\r\n"+val+"\r\n" {
		t.Fatalf("RESP GET reply = %q", got)
	}

	store.Insert(11, "clean")

	// Line connection: the poisoned key errors, the stream stays usable.
	clL, brL := pipeConn(t, srv)
	if _, err := clL.Write([]byte("GET 10\nGET 11\nRANGE 10 12\nRANGE 11 12\n")); err != nil {
		t.Fatal(err)
	}
	wants := []string{
		"-ERR value not line-representable",
		"$clean",
		"-ERR value not line-representable",
		"*1",
		"11 clean",
	}
	for i, w := range wants {
		if got := mustReadLine(t, brL); got != w {
			t.Fatalf("line reply %d = %q, want %q", i, got, w)
		}
	}
}

// wirePairGrouped is wirePair in group-batching mode; the tiny window
// keeps single-connection exchanges from idling in the gather loop.
func wirePairGrouped(tb testing.TB, store Store) net.Conn {
	tb.Helper()
	srv := New(Config{ReadTimeout: -1, WriteTimeout: -1, GroupBatch: true, BatchWindow: 5 * time.Microsecond}, store)
	cl, se := net.Pipe()
	go srv.ServeConn(se)
	tb.Cleanup(func() {
		cl.Close()
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	return cl
}

// TestGroupBatchAllocs pins the grouped hot path end to end — parse,
// ring publish, executor gather/execute, completion wake, framed reply,
// vectored flush: zero server-side allocations for GET and DEL, one
// amortized for SET (the value arena's chunk cycle), exactly the
// per-connection mode's pins. AllocsPerRun counts every goroutine, so
// the pin covers the executor too.
func TestGroupBatchAllocs(t *testing.T) {
	const depth = 16
	cl := wirePairGrouped(t, lockfree.NewSkipList[int, string]())

	t.Run("get", func(t *testing.T) {
		pinAllocs(t, cl, strings.Repeat("GET 42\n", depth), depth*len("_\n"), 0)
	})
	t.Run("del", func(t *testing.T) {
		pinAllocs(t, cl, strings.Repeat("DEL 42\n", depth), depth*len(":0\n"), 0)
	})
	t.Run("set", func(t *testing.T) {
		pinAllocs(t, cl, strings.Repeat("SET 7 valuevaluevaluevalue\n", depth), depth*len(":0\n"), 1)
	})
}

func benchWireGrouped(b *testing.B, req string, respLen int) {
	cl := wirePairGrouped(b, lockfree.NewSkipList[int, string]())
	reqB := []byte(req)
	respB := make([]byte, respLen)
	for i := 0; i < 20; i++ {
		exchange(b, cl, reqB, respB)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		exchange(b, cl, reqB, respB)
	}
}

func BenchmarkServerWireGroupGetLine(b *testing.B) {
	benchWireGrouped(b, strings.Repeat("GET 42\n", benchDepth), benchDepth*len("_\n"))
}

func BenchmarkServerWireGroupGetResp(b *testing.B) {
	benchWireGrouped(b, strings.Repeat(respCmd("GET", "42"), benchDepth), benchDepth*len("$-1\r\n"))
}

func BenchmarkServerWireGroupDelLine(b *testing.B) {
	benchWireGrouped(b, strings.Repeat("DEL 42\n", benchDepth), benchDepth*len(":0\n"))
}

func BenchmarkServerWireGroupDelResp(b *testing.B) {
	benchWireGrouped(b, strings.Repeat(respCmd("DEL", "42"), benchDepth), benchDepth*len(":0\r\n"))
}

func BenchmarkServerWireGroupSetLine(b *testing.B) {
	benchWireGrouped(b, strings.Repeat("SET 7 valuevaluevaluevalue\n", benchDepth), benchDepth*len(":0\n"))
}

func BenchmarkServerWireGroupSetResp(b *testing.B) {
	benchWireGrouped(b, strings.Repeat(respCmd("SET", "7", "valuevaluevaluevalue"), benchDepth), benchDepth*len("+OK\r\n"))
}
