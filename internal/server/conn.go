package server

import (
	"bufio"
	"bytes"
	"cmp"
	"errors"
	"net"
	"slices"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/instrument"
	"repro/internal/telemetry"
	"repro/internal/wal"
)

// conn is one client connection. Two goroutines serve it:
//
//   - the reader detects the wire dialect (line protocol, or RESP2 when
//     the first byte is '*'), parses requests, and coalesces every
//     already-buffered run of pipelined commands into one work item,
//     never blocking to wait for more commands than the client has
//     already sent;
//   - the writer (the goroutine that called serve) executes work items —
//     turning same-verb stretches into one sorted batch call against the
//     store — and writes responses back in request order, flushing each
//     run with a single vectored write.
//
// The split is what makes pipelining pay: while the writer executes run k,
// the reader is already parsing run k+1 off the socket.
//
// Steady-state operation allocates nothing: parsed entries live in run
// slices recycled through the free channel, SET values intern into the
// connection's chunk arena, batch scratch and the reply buffer are reused
// across runs, and replies are assembled from interned literals.
type conn struct {
	srv *Server
	nc  net.Conn
	br  *bufio.Reader

	runs     chan workRun
	free     chan []entry // recycled run slices, writer -> reader
	draining atomic.Bool

	// reader-owned parse state.
	resp    bool       // wire dialect: RESP2 when true, line protocol otherwise
	lineBuf []byte     // scratch reused across readLine calls
	respBuf []byte     // scratch reused across RESP bulk reads
	arena   valueArena // SET values intern here, handed on to the store

	// writer-owned reply state.
	rep *replySet   // interned reply literals for the connection's dialect
	w   replyWriter // per-run reply buffer, flushed vectored

	// writer-owned batch scratch, reused across coalesced runs: the sort
	// permutation, its inverse, the sorted inputs, and the result slices.
	ord    []int
	ord2   []int
	keys   []int
	items  []core.KV[int, string]
	vals   []string
	flags  []bool
	rpairs []kvPair // RANGE result scratch

	scratchNum [24]byte // integer-rendering scratch for responses

	// observability state, touched only when srv.obs != nil. pend holds
	// the current run's executed units so their shared read-complete-to-
	// write-flushed latency can be recorded once the flush lands;
	// queueWait is the current run's reader-to-writer wait, copied into
	// trace records. proc/procStats are the pre-allocated attribution
	// context attached to sampled store calls — per-connection, so the
	// sampled hot path never allocates.
	pend      []pendUnit
	queueWait int64
	proc      core.Proc
	procStats core.OpStats

	// walMax is the highest WAL LSN this connection's applied mutations
	// have been assigned; in sync-durability mode flush holds the run's
	// replies until the log reports it durable.
	walMax uint64

	// group-batching state (GroupBatch mode only): the run's published
	// units (executors hold pointers into gbUnits, so it is pre-sized
	// before any publish and never appended mid-run), the outstanding
	// completion count, and the capacity-1 completion wake channel.
	gbUnits     []gbUnit
	gbRemaining atomic.Int32
	gbWake      chan struct{}
}

// kvPair is one RANGE result, buffered so an oversized scan can fail
// cleanly before any output is framed.
type kvPair struct {
	k int
	v string
}

// pendUnit is one executed unit (point command or coalesced batch)
// awaiting its post-flush latency record.
type pendUnit struct {
	verb  Verb
	class uint8
	n     uint32
}

// entry is one parsed request: a command, or the parse error to answer.
type entry struct {
	cmd Command
	err error
}

// workRun is a pipelined run of requests handed from reader to writer.
// enq is the hand-off Nanotime — the run's read-complete instant, the
// zero point of its commands' latency — stamped only when observability
// is attached.
type workRun struct {
	entries []entry
	enq     int64
}

func newConn(s *Server, nc net.Conn) *conn {
	c := &conn{
		srv:  s,
		nc:   nc,
		br:   bufio.NewReaderSize(nc, 8<<10),
		runs: make(chan workRun, 4),
		// Capacity covers every run slice that can be in flight at once —
		// the runs buffer, one in the reader's hands, one in the writer's —
		// so recycling sends never block and never drop in steady state.
		free: make(chan []entry, 8),
		rep:  &lineReplies,
	}
	c.proc.Stats = &c.procStats
	if s.gb != nil {
		c.gbWake = make(chan struct{}, 1)
	}
	return c
}

// serve runs the writer loop to completion; it is the connection's
// lifetime. The reader goroutine exits when the transport errors, the
// client quits, or a drain deadline expires; closing the runs channel is
// its last act.
func (c *conn) serve() {
	defer c.srv.remove(c)
	go c.readLoop()
	quit := false
	for r := range c.runs {
		if !quit {
			if c.srv.gb != nil {
				quit = c.executeGrouped(r)
			} else {
				quit = c.execute(r)
			}
			if c.flush() != nil {
				quit = true
			}
			c.finishObs(r.enq)
		}
		// After QUIT (or a dead transport) remaining runs are drained
		// unanswered so the reader can never block on a full channel.
		c.putEntries(r.entries)
	}
	c.flush()
	c.nc.Close()
}

// startDrain puts the connection into shutdown draining: it keeps reading
// for DrainGrace — answering commands already on the wire — then stops
// accepting input, finishes queued runs, flushes, and closes.
func (c *conn) startDrain() {
	c.draining.Store(true)
	c.nc.SetReadDeadline(time.Now().Add(c.srv.cfg.DrainGrace))
}

// armReadDeadline sets the idle deadline for the next blocking read. The
// re-check closes the race with startDrain: whichever order the two run
// in, the connection ends up with the short drain deadline. A negative
// ReadTimeout disables idle deadlines entirely (net.Pipe test transports
// allocate per SetReadDeadline call, which would poison the allocation
// pins); draining still arms its own deadline through startDrain.
func (c *conn) armReadDeadline() {
	if c.draining.Load() || c.srv.cfg.ReadTimeout < 0 {
		return
	}
	c.nc.SetReadDeadline(time.Now().Add(c.srv.cfg.ReadTimeout))
	if c.draining.Load() {
		c.nc.SetReadDeadline(time.Now().Add(c.srv.cfg.DrainGrace))
	}
}

// readLoop is the reader goroutine: block for one request, then absorb —
// without blocking — every complete request the client has already
// pipelined, up to MaxBatch, and hand the run to the writer.
func (c *conn) readLoop() {
	defer close(c.runs)
	if !c.detectDialect() {
		return
	}
	for {
		c.armReadDeadline()
		e, err := c.readEntry()
		if err != nil {
			// Transport gone, idle timeout, or drain window closed: stop
			// reading. Queued runs still get answers.
			return
		}
		run := workRun{entries: append(c.getEntries(), e)}
		sawQuit := e.err == nil && e.cmd.Verb == VerbQuit
		for !sawQuit && len(run.entries) < c.srv.cfg.MaxBatch && c.bufferedEntry() {
			e, err := c.readEntry()
			if err != nil {
				c.stampRun(&run)
				c.runs <- run
				return
			}
			run.entries = append(run.entries, e)
			sawQuit = e.err == nil && e.cmd.Verb == VerbQuit
		}
		c.stampRun(&run)
		c.runs <- run
		if sawQuit {
			return
		}
	}
}

// detectDialect peeks the connection's first byte without consuming it:
// '*' can only open a RESP multibulk frame, anything else is the line
// protocol (or a RESP inline command, which shares its grammar). The
// choice is sticky for the connection's lifetime. Returns false when the
// transport dies before the first byte.
func (c *conn) detectDialect() bool {
	c.armReadDeadline()
	b, err := c.br.Peek(1)
	if err != nil {
		return false
	}
	if b[0] == '*' {
		c.resp = true
		c.rep = &respReplies
		c.srv.addCounter(instrument.CtrConnResp, 1)
	}
	return true
}

// readEntry reads and parses one request in the connection's dialect. The
// returned error is transport-fatal; per-request failures travel inside
// the entry.
func (c *conn) readEntry() (entry, error) {
	if c.resp {
		return c.readRespEntry()
	}
	return c.readLineEntry()
}

func (c *conn) readLineEntry() (entry, error) {
	line, err := c.readLine()
	switch {
	case err == nil:
		cmd, cerr := parseCommand(line, &c.arena)
		return entry{cmd: cmd, err: cerr}, nil
	case errors.Is(err, ErrLineTooLong):
		return entry{err: err}, nil
	default:
		return entry{}, err
	}
}

// getEntries fetches a recycled run slice, empty but with its capacity
// intact, or nil when the free list is dry (cold start).
func (c *conn) getEntries() []entry {
	select {
	case e := <-c.free:
		return e
	default:
		return nil
	}
}

// putEntries recycles a finished run's slice. Entries are cleared first so
// a parked slice cannot pin value strings (and through them arena chunks)
// past their run.
func (c *conn) putEntries(e []entry) {
	if cap(e) == 0 {
		return
	}
	clear(e)
	select {
	case c.free <- e[:0]:
	default:
	}
}

// bufferedEntry reports whether a complete request is already sitting in
// the read buffer, i.e. whether readEntry can run without blocking.
func (c *conn) bufferedEntry() bool {
	if c.resp {
		return c.bufferedResp()
	}
	return c.bufferedLine()
}

// bufferedLine reports whether a complete request line is already sitting
// in the read buffer, i.e. whether readLine can run without blocking.
func (c *conn) bufferedLine() bool {
	n := c.br.Buffered()
	if n == 0 {
		return false
	}
	b, _ := c.br.Peek(n)
	return bytes.IndexByte(b, '\n') >= 0
}

// readLine reads one '\n'-terminated line, reusing the connection's
// scratch buffer. A line longer than MaxLineBytes is consumed to its
// newline and reported as ErrLineTooLong — the request fails, the stream
// stays in sync, and the connection keeps serving.
func (c *conn) readLine() ([]byte, error) {
	max := c.srv.cfg.MaxLineBytes
	line := c.lineBuf[:0]
	tooLong := false
	for {
		frag, err := c.br.ReadSlice('\n')
		if tooLong {
			switch {
			case err == nil:
				return nil, ErrLineTooLong
			case errors.Is(err, bufio.ErrBufferFull):
				continue // keep discarding the oversized line
			default:
				return nil, err
			}
		}
		line = append(line, frag...)
		c.lineBuf = line[:0]
		switch {
		case err == nil:
			line = line[:len(line)-1] // strip '\n'
			if len(line) > max {
				return nil, ErrLineTooLong
			}
			return line, nil
		case errors.Is(err, bufio.ErrBufferFull):
			if len(line) > max {
				tooLong = true
			}
		default:
			return nil, err
		}
	}
}

// execute answers one run: parse errors answer -ERR in place, stretches of
// two or more same-verb point commands coalesce into one batch call, and
// everything else executes singly. Responses land in request order.
// Returns true when the run asked to close the connection.
func (c *conn) execute(r workRun) (quit bool) {
	if c.srv.obs != nil {
		c.queueWait = telemetry.Nanotime() - r.enq
		c.srv.obs.recordQueueWait(c.queueWait)
		c.pend = c.pend[:0]
	}
	e := r.entries
	for i := 0; i < len(e); {
		if e[i].err != nil {
			c.writeErr(e[i].err)
			i++
			continue
		}
		v := e[i].cmd.Verb
		if v.batchable() {
			j := i + 1
			for j < len(e) && e[j].err == nil && e[j].cmd.Verb == v {
				j++
			}
			if j-i >= 2 {
				c.executeBatch(v, e[i:j])
				c.srv.addCounter(instrument.CtrCmdsCoalesced, uint64(j-i))
				i = j
				continue
			}
		}
		if c.executeSingle(e[i].cmd) {
			return true
		}
		i++
	}
	return false
}

// executeBatch turns a same-verb stretch into one sorted batch call. The
// batch methods report results positionally against the sorted key order,
// so the stretch is pre-sorted through an index permutation and the
// responses are written back through its inverse — the client sees answers
// in the order it sent the requests. Among duplicate keys in one stretch
// the assignment of success to request is arbitrary, exactly as it is for
// concurrent single commands on separate connections.
func (c *conn) executeBatch(v Verb, e []entry) {
	n := len(e)
	ord := c.ord[:0]
	for i := 0; i < n; i++ {
		ord = append(ord, i)
	}
	slices.SortFunc(ord, func(a, b int) int {
		if d := cmp.Compare(e[a].cmd.Key, e[b].cmd.Key); d != 0 {
			return d
		}
		return cmp.Compare(a, b)
	})
	c.ord = ord
	flags := growTo(&c.flags, n)

	// A trace-sampled batch runs through the store's attribution surface
	// with the connection's pre-allocated Proc, so its trace carries exact
	// step counts; every other batch takes the plain path untouched.
	obs := c.srv.obs
	var sampled, attrib bool
	var start int64
	if obs != nil {
		sampled = obs.sampleNext()
		attrib = sampled && c.srv.procStore != nil
		if attrib {
			c.procStats.Reset()
		}
		start = telemetry.Nanotime()
	}

	switch v {
	case VerbSet:
		items := c.items[:0]
		for _, oi := range ord {
			items = append(items, core.KV[int, string]{Key: e[oi].cmd.Key, Value: e[oi].cmd.Value})
		}
		c.items = items
		if attrib {
			c.srv.procStore.InsertBatchProc(&c.proc, items, flags)
		} else {
			c.srv.store.InsertBatch(items, flags)
		}
	case VerbDel:
		keys := c.keys[:0]
		for _, oi := range ord {
			keys = append(keys, e[oi].cmd.Key)
		}
		c.keys = keys
		if attrib {
			c.srv.procStore.DeleteBatchProc(&c.proc, keys, flags)
		} else {
			c.srv.store.DeleteBatch(keys, flags)
		}
	default: // VerbGet
		keys := c.keys[:0]
		for _, oi := range ord {
			keys = append(keys, e[oi].cmd.Key)
		}
		c.keys = keys
		vals := growTo(&c.vals, n)
		if attrib {
			c.srv.procStore.GetBatchProc(&c.proc, keys, vals, flags)
		} else {
			c.srv.store.GetBatch(keys, vals, flags)
		}
	}

	if obs != nil {
		c.noteUnit(v, e[ord[0]].cmd.Key, n, telemetry.Nanotime()-start, sampled, attrib)
	}

	// Invert the permutation on the fly: request i's result sits at the
	// sorted position m with ord[m] == i. Walk requests in order via a
	// position lookup built into the (otherwise idle) half of ord.
	pos := growTo(&c.ord2, n)
	for m, oi := range ord {
		pos[oi] = m
	}
	for i := 0; i < n; i++ {
		m := pos[i]
		switch v {
		case VerbGet:
			c.writeValue(c.vals[m], flags[m])
		case VerbSet:
			if flags[m] && c.srv.wal != nil {
				c.logMutation(wal.OpSet, c.items[m].Key, c.items[m].Value)
			}
			c.writeSetReply(flags[m])
		default:
			if flags[m] && c.srv.wal != nil {
				c.logMutation(wal.OpDel, c.keys[m], "")
			}
			c.writeBool(flags[m])
		}
	}
}

// growTo resizes *s to length n, reusing capacity.
func growTo[T any](s *[]T, n int) []T {
	if cap(*s) < n {
		*s = make([]T, n)
	}
	*s = (*s)[:n]
	return *s
}

// executeSingle answers one non-coalesced command. Returns true for QUIT.
func (c *conn) executeSingle(cmd Command) (quit bool) {
	// Sampling ticks on every unit; attribution additionally needs a
	// store that can carry a Proc and a verb whose execution is one store
	// call (the point commands). A sampled PING or RANGE still produces a
	// trace record — wall time, batch size, queue wait — with zero step
	// counts.
	obs := c.srv.obs
	var sampled, attrib bool
	var start int64
	if obs != nil {
		sampled = obs.sampleNext()
		attrib = sampled && c.srv.procStore != nil && cmd.Verb.batchable()
		if attrib {
			c.procStats.Reset()
		}
		start = telemetry.Nanotime()
	}
	switch cmd.Verb {
	case VerbPing:
		c.w.literal(c.rep.pong)
	case VerbSet:
		var ok bool
		if attrib {
			ok = c.srv.procStore.InsertProc(&c.proc, cmd.Key, cmd.Value)
		} else {
			ok = c.srv.store.Insert(cmd.Key, cmd.Value)
		}
		if ok && c.srv.wal != nil {
			c.logMutation(wal.OpSet, cmd.Key, cmd.Value)
		}
		c.writeSetReply(ok)
	case VerbGet:
		var v string
		var ok bool
		if attrib {
			v, ok = c.srv.procStore.GetProc(&c.proc, cmd.Key)
		} else {
			v, ok = c.srv.store.Get(cmd.Key)
		}
		c.writeValue(v, ok)
	case VerbDel:
		var ok bool
		if attrib {
			ok = c.srv.procStore.DeleteProc(&c.proc, cmd.Key)
		} else {
			ok = c.srv.store.Delete(cmd.Key)
		}
		if ok && c.srv.wal != nil {
			c.logMutation(wal.OpDel, cmd.Key, "")
		}
		c.writeBool(ok)
	case VerbLen:
		c.writeInt(c.srv.store.Len())
	case VerbRange:
		c.executeRange(cmd.Key, cmd.Hi)
	case VerbQuit:
		c.w.literal(c.rep.ok)
		quit = true
	}
	if obs != nil {
		c.noteUnit(cmd.Verb, cmd.Key, 1, telemetry.Nanotime()-start, sampled, attrib)
	}
	return quit
}

// stampRun records the run's read-complete instant when observability is
// attached; the stamp is the zero point of the run's command latencies.
func (c *conn) stampRun(r *workRun) {
	if c.srv.obs != nil {
		r.enq = telemetry.Nanotime()
	}
}

// noteUnit records one executed unit: its batch-size sample, its pending
// latency record (completed after the flush), the slow-command counter,
// and — when the unit is trace-sampled or slow — its trace record. attrib
// marks units whose store call ran with the connection's Proc attached,
// i.e. whose step counts in the trace are exact rather than zero.
func (c *conn) noteUnit(v Verb, key, n int, elapsed int64, sampled, attrib bool) {
	obs := c.srv.obs
	obs.recordBatch(v, n)
	c.pend = append(c.pend, pendUnit{verb: v, class: uint8(batchClass(n)), n: uint32(n)})
	slow := elapsed >= obs.slowNanos
	if slow {
		c.srv.addCounter(instrument.CtrCmdsSlow, uint64(n))
	}
	if !sampled && !slow {
		return
	}
	var stats *core.OpStats
	if attrib {
		stats = &c.procStats
	}
	obs.trace(v, key, n, elapsed, c.queueWait, sampled, slow, stats)
}

// finishObs completes the latency records of the just-flushed run: every
// command in it shares the run's read-complete-to-write-flushed span.
func (c *conn) finishObs(enq int64) {
	obs := c.srv.obs
	if obs == nil || len(c.pend) == 0 {
		return
	}
	now := telemetry.Nanotime()
	for _, p := range c.pend {
		obs.recordLatency(p.verb, int(p.class), now-enq, uint64(p.n))
	}
	c.pend = c.pend[:0]
}

// executeRange collects [lo, hi) up to MaxRange pairs before writing
// anything, so an oversized scan can fail cleanly with -ERR instead of a
// truncated multi-line answer. The pair buffer is connection scratch,
// cleared after framing so parked capacity never pins store values.
func (c *conn) executeRange(lo, hi int) {
	maxR := c.srv.cfg.MaxRange
	pairs := c.rpairs[:0]
	over := false
	c.srv.store.AscendRange(lo, hi, func(k int, v string) bool {
		if len(pairs) >= maxR {
			over = true
			return false
		}
		pairs = append(pairs, kvPair{k, v})
		return true
	})
	if over {
		clear(pairs)
		c.rpairs = pairs[:0]
		c.writeErr(errors.New("range result exceeds " + strconv.Itoa(maxR) + " keys"))
		return
	}
	if !c.resp {
		// Same framing rule as writeValue: one unrepresentable value fails
		// the whole scan before any output is framed.
		for _, p := range pairs {
			if strings.IndexByte(p.v, '\n') >= 0 {
				clear(pairs)
				c.rpairs = pairs[:0]
				c.writeErr(errValueNotLine)
				return
			}
		}
	}
	if c.resp {
		// Flat array of alternating key and value bulks, Redis-style.
		c.w.writeByte('*')
		c.w.appendInt(int64(2 * len(pairs)))
		c.w.literal("\r\n")
		for _, p := range pairs {
			num := strconv.AppendInt(c.numBuf(), int64(p.k), 10)
			c.w.writeByte('$')
			c.w.appendInt(int64(len(num)))
			c.w.literal("\r\n")
			c.w.bytes(num)
			c.w.literal("\r\n")
			c.w.writeByte('$')
			c.w.appendInt(int64(len(p.v)))
			c.w.literal("\r\n")
			c.w.value(p.v)
			c.w.literal("\r\n")
		}
	} else {
		c.w.writeByte('*')
		c.w.appendInt(int64(len(pairs)))
		c.w.literal("\n")
		for _, p := range pairs {
			c.w.appendInt(int64(p.k))
			c.w.writeByte(' ')
			c.w.value(p.v)
			c.w.literal("\n")
		}
	}
	clear(pairs)
	c.rpairs = pairs[:0]
}

func (c *conn) numBuf() []byte { return c.scratchNum[:0] }

// writeBool answers a point command's success flag as :1/:0.
func (c *conn) writeBool(ok bool) {
	if ok {
		c.w.literal(c.rep.yes)
	} else {
		c.w.literal(c.rep.no)
	}
}

// writeSetReply answers a SET. The line protocol reports the insert flag
// (:1 inserted, :0 duplicate); RESP answers +OK like Redis regardless —
// RESP clients expect a status string, and values here are immutable
// insert-if-absent, so +OK on a duplicate means "the key holds a value",
// which is the contract RESP callers act on.
func (c *conn) writeSetReply(ok bool) {
	if c.resp {
		c.w.literal(c.rep.ok)
		return
	}
	c.writeBool(ok)
}

func (c *conn) writeInt(n int) {
	c.w.writeByte(':')
	c.w.appendInt(int64(n))
	c.w.literal(c.rep.eol)
}

// errValueNotLine answers a line-dialect read of a value the line
// protocol cannot frame; the message is part of the wire contract (see
// README's "RESP compatibility" note).
var errValueNotLine = errors.New("value not line-representable")

// writeValue frames a GET hit. RESP bulks are length-prefixed, so any
// byte sequence round-trips; the line dialect frames by newline with no
// length prefix, so a value containing '\n' (storable only via RESP SET,
// since line-protocol parsing splits on newlines) cannot be framed —
// emitting it raw would desync the reader's framing for the rest of the
// connection. Such a read answers -ERR value not line-representable
// instead: the request fails, the stream stays in sync.
func (c *conn) writeValue(v string, ok bool) {
	if !ok {
		c.w.literal(c.rep.miss)
		return
	}
	if c.resp {
		c.w.writeByte('$')
		c.w.appendInt(int64(len(v)))
		c.w.literal("\r\n")
		c.w.value(v)
		c.w.literal("\r\n")
		return
	}
	if strings.IndexByte(v, '\n') >= 0 {
		c.writeErr(errValueNotLine)
		return
	}
	c.w.writeByte('$')
	c.w.value(v)
	c.w.literal("\n")
}

func (c *conn) writeErr(err error) {
	c.w.literal(c.rep.errp)
	c.w.literal(err.Error())
	c.w.literal(c.rep.eol)
}

// logMutation publishes an applied mutation to the WAL — always after
// the store apply, at the reply site, so per-connection per-key program
// order equals log order — and tracks the run's highest LSN for the
// sync-mode flush hold. The publish is the WAL's 0-alloc ring hand-off;
// the fsync happens on the log's writer goroutine.
func (c *conn) logMutation(op wal.Op, key int, val string) {
	lsn := c.srv.wal.Append(op, int64(key), val)
	if lsn > c.walMax {
		c.walMax = lsn
	}
}

// flush pushes the run's assembled replies to the client in one vectored
// write under the write deadline. A negative WriteTimeout disables the
// deadline (see armReadDeadline). In sync-durability mode the flush
// first waits for the run's mutations to be fsync-durable: an ack a
// client can observe implies the write survives a crash. A log failure
// poisons the connection — the replies it holds can no longer be
// honored, so the connection drops rather than lie.
func (c *conn) flush() error {
	if c.walMax > 0 {
		if c.srv.walSync {
			if err := c.srv.wal.WaitDurable(c.walMax); err != nil {
				return err
			}
		}
		c.walMax = 0
	}
	n := c.w.buffered()
	if n == 0 {
		return nil
	}
	if c.srv.cfg.WriteTimeout >= 0 {
		c.nc.SetWriteDeadline(time.Now().Add(c.srv.cfg.WriteTimeout))
	}
	err := c.w.flush(c.nc)
	if err == nil {
		c.srv.addCounter(instrument.CtrWireFlushes, 1)
		if c.srv.obs != nil {
			c.srv.obs.recordFlush(int64(n))
		}
	}
	return err
}
