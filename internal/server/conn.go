package server

import (
	"bufio"
	"bytes"
	"cmp"
	"errors"
	"net"
	"slices"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/instrument"
	"repro/internal/telemetry"
)

// conn is one client connection. Two goroutines serve it:
//
//   - the reader parses request lines and coalesces every already-buffered
//     run of pipelined commands into one work item, never blocking to wait
//     for more commands than the client has already sent;
//   - the writer (the goroutine that called serve) executes work items —
//     turning same-verb stretches into one sorted batch call against the
//     store — and writes responses back in request order.
//
// The split is what makes pipelining pay: while the writer executes run k,
// the reader is already parsing run k+1 off the socket.
type conn struct {
	srv *Server
	nc  net.Conn
	br  *bufio.Reader
	bw  *bufio.Writer

	runs     chan workRun
	draining atomic.Bool

	lineBuf []byte // reader-owned scratch, reused across readLine calls

	// writer-owned batch scratch, reused across coalesced runs: the sort
	// permutation, its inverse, the sorted inputs, and the result slices.
	ord   []int
	ord2  []int
	keys  []int
	items []core.KV[int, string]
	vals  []string
	flags []bool

	scratchNum [24]byte // integer-rendering scratch for responses

	// observability state, touched only when srv.obs != nil. pend holds
	// the current run's executed units so their shared read-complete-to-
	// write-flushed latency can be recorded once the flush lands;
	// queueWait is the current run's reader-to-writer wait, copied into
	// trace records. proc/procStats are the pre-allocated attribution
	// context attached to sampled store calls — per-connection, so the
	// sampled hot path never allocates.
	pend      []pendUnit
	queueWait int64
	proc      core.Proc
	procStats core.OpStats
}

// pendUnit is one executed unit (point command or coalesced batch)
// awaiting its post-flush latency record.
type pendUnit struct {
	verb  Verb
	class uint8
	n     uint32
}

// entry is one parsed request: a command, or the parse error to answer.
type entry struct {
	cmd Command
	err error
}

// workRun is a pipelined run of requests handed from reader to writer.
// enq is the hand-off Nanotime — the run's read-complete instant, the
// zero point of its commands' latency — stamped only when observability
// is attached.
type workRun struct {
	entries []entry
	enq     int64
}

func newConn(s *Server, nc net.Conn) *conn {
	c := &conn{
		srv:  s,
		nc:   nc,
		br:   bufio.NewReaderSize(nc, 8<<10),
		bw:   bufio.NewWriterSize(nc, 8<<10),
		runs: make(chan workRun, 4),
	}
	c.proc.Stats = &c.procStats
	return c
}

// serve runs the writer loop to completion; it is the connection's
// lifetime. The reader goroutine exits when the transport errors, the
// client quits, or a drain deadline expires; closing the runs channel is
// its last act.
func (c *conn) serve() {
	defer c.srv.remove(c)
	go c.readLoop()
	quit := false
	for r := range c.runs {
		if !quit {
			quit = c.execute(r)
			if c.flush() != nil {
				quit = true
			}
			c.finishObs(r.enq)
		}
		// After QUIT (or a dead transport) remaining runs are drained
		// unanswered so the reader can never block on a full channel.
	}
	c.flush()
	c.nc.Close()
}

// startDrain puts the connection into shutdown draining: it keeps reading
// for DrainGrace — answering commands already on the wire — then stops
// accepting input, finishes queued runs, flushes, and closes.
func (c *conn) startDrain() {
	c.draining.Store(true)
	c.nc.SetReadDeadline(time.Now().Add(c.srv.cfg.DrainGrace))
}

// armReadDeadline sets the idle deadline for the next blocking read. The
// re-check closes the race with startDrain: whichever order the two run
// in, the connection ends up with the short drain deadline.
func (c *conn) armReadDeadline() {
	if c.draining.Load() {
		return
	}
	c.nc.SetReadDeadline(time.Now().Add(c.srv.cfg.ReadTimeout))
	if c.draining.Load() {
		c.nc.SetReadDeadline(time.Now().Add(c.srv.cfg.DrainGrace))
	}
}

// readLoop is the reader goroutine: block for one request, then absorb —
// without blocking — every complete line the client has already pipelined,
// up to MaxBatch, and hand the run to the writer.
func (c *conn) readLoop() {
	defer close(c.runs)
	for {
		c.armReadDeadline()
		line, err := c.readLine()
		var run workRun
		switch {
		case err == nil:
			run.entries = append(run.entries, parseEntry(line))
		case errors.Is(err, ErrLineTooLong):
			run.entries = append(run.entries, entry{err: err})
		default:
			// Transport gone, idle timeout, or drain window closed: stop
			// reading. Queued runs still get answers.
			return
		}
		sawQuit := run.entries[0].err == nil && run.entries[0].cmd.Verb == VerbQuit
		for !sawQuit && len(run.entries) < c.srv.cfg.MaxBatch && c.bufferedLine() {
			line, err := c.readLine()
			switch {
			case err == nil:
				e := parseEntry(line)
				run.entries = append(run.entries, e)
				sawQuit = e.err == nil && e.cmd.Verb == VerbQuit
			case errors.Is(err, ErrLineTooLong):
				run.entries = append(run.entries, entry{err: err})
			default:
				c.stampRun(&run)
				c.runs <- run
				return
			}
		}
		c.stampRun(&run)
		c.runs <- run
		if sawQuit {
			return
		}
	}
}

func parseEntry(line []byte) entry {
	cmd, err := ParseCommand(line)
	return entry{cmd: cmd, err: err}
}

// bufferedLine reports whether a complete request line is already sitting
// in the read buffer, i.e. whether readLine can run without blocking.
func (c *conn) bufferedLine() bool {
	n := c.br.Buffered()
	if n == 0 {
		return false
	}
	b, _ := c.br.Peek(n)
	return bytes.IndexByte(b, '\n') >= 0
}

// readLine reads one '\n'-terminated line, reusing the connection's
// scratch buffer. A line longer than MaxLineBytes is consumed to its
// newline and reported as ErrLineTooLong — the request fails, the stream
// stays in sync, and the connection keeps serving.
func (c *conn) readLine() ([]byte, error) {
	max := c.srv.cfg.MaxLineBytes
	line := c.lineBuf[:0]
	tooLong := false
	for {
		frag, err := c.br.ReadSlice('\n')
		if tooLong {
			switch {
			case err == nil:
				return nil, ErrLineTooLong
			case errors.Is(err, bufio.ErrBufferFull):
				continue // keep discarding the oversized line
			default:
				return nil, err
			}
		}
		line = append(line, frag...)
		c.lineBuf = line[:0]
		switch {
		case err == nil:
			line = line[:len(line)-1] // strip '\n'
			if len(line) > max {
				return nil, ErrLineTooLong
			}
			return line, nil
		case errors.Is(err, bufio.ErrBufferFull):
			if len(line) > max {
				tooLong = true
			}
		default:
			return nil, err
		}
	}
}

// execute answers one run: parse errors answer -ERR in place, stretches of
// two or more same-verb point commands coalesce into one batch call, and
// everything else executes singly. Responses land in request order.
// Returns true when the run asked to close the connection.
func (c *conn) execute(r workRun) (quit bool) {
	if c.srv.obs != nil {
		c.queueWait = telemetry.Nanotime() - r.enq
		c.srv.obs.recordQueueWait(c.queueWait)
		c.pend = c.pend[:0]
	}
	e := r.entries
	for i := 0; i < len(e); {
		if e[i].err != nil {
			c.writeErr(e[i].err)
			i++
			continue
		}
		v := e[i].cmd.Verb
		if v.batchable() {
			j := i + 1
			for j < len(e) && e[j].err == nil && e[j].cmd.Verb == v {
				j++
			}
			if j-i >= 2 {
				c.executeBatch(v, e[i:j])
				c.srv.addCounter(instrument.CtrCmdsCoalesced, uint64(j-i))
				i = j
				continue
			}
		}
		if c.executeSingle(e[i].cmd) {
			return true
		}
		i++
	}
	return false
}

// executeBatch turns a same-verb stretch into one sorted batch call. The
// batch methods report results positionally against the sorted key order,
// so the stretch is pre-sorted through an index permutation and the
// responses are written back through its inverse — the client sees answers
// in the order it sent the requests. Among duplicate keys in one stretch
// the assignment of success to request is arbitrary, exactly as it is for
// concurrent single commands on separate connections.
func (c *conn) executeBatch(v Verb, e []entry) {
	n := len(e)
	ord := c.ord[:0]
	for i := 0; i < n; i++ {
		ord = append(ord, i)
	}
	slices.SortFunc(ord, func(a, b int) int {
		if d := cmp.Compare(e[a].cmd.Key, e[b].cmd.Key); d != 0 {
			return d
		}
		return cmp.Compare(a, b)
	})
	c.ord = ord
	flags := growTo(&c.flags, n)

	// A trace-sampled batch runs through the store's attribution surface
	// with the connection's pre-allocated Proc, so its trace carries exact
	// step counts; every other batch takes the plain path untouched.
	obs := c.srv.obs
	var sampled, attrib bool
	var start int64
	if obs != nil {
		sampled = obs.sampleNext()
		attrib = sampled && c.srv.procStore != nil
		if attrib {
			c.procStats.Reset()
		}
		start = telemetry.Nanotime()
	}

	switch v {
	case VerbSet:
		items := c.items[:0]
		for _, oi := range ord {
			items = append(items, core.KV[int, string]{Key: e[oi].cmd.Key, Value: e[oi].cmd.Value})
		}
		c.items = items
		if attrib {
			c.srv.procStore.InsertBatchProc(&c.proc, items, flags)
		} else {
			c.srv.store.InsertBatch(items, flags)
		}
	case VerbDel:
		keys := c.keys[:0]
		for _, oi := range ord {
			keys = append(keys, e[oi].cmd.Key)
		}
		c.keys = keys
		if attrib {
			c.srv.procStore.DeleteBatchProc(&c.proc, keys, flags)
		} else {
			c.srv.store.DeleteBatch(keys, flags)
		}
	default: // VerbGet
		keys := c.keys[:0]
		for _, oi := range ord {
			keys = append(keys, e[oi].cmd.Key)
		}
		c.keys = keys
		vals := growTo(&c.vals, n)
		if attrib {
			c.srv.procStore.GetBatchProc(&c.proc, keys, vals, flags)
		} else {
			c.srv.store.GetBatch(keys, vals, flags)
		}
	}

	if obs != nil {
		c.noteUnit(v, e[ord[0]].cmd.Key, n, telemetry.Nanotime()-start, sampled, attrib)
	}

	// Invert the permutation on the fly: request i's result sits at the
	// sorted position m with ord[m] == i. Walk requests in order via a
	// position lookup built into the (otherwise idle) half of ord.
	pos := growTo(&c.ord2, n)
	for m, oi := range ord {
		pos[oi] = m
	}
	for i := 0; i < n; i++ {
		m := pos[i]
		if v == VerbGet {
			c.writeValue(c.vals[m], flags[m])
		} else {
			c.writeBool(flags[m])
		}
	}
}

// growTo resizes *s to length n, reusing capacity.
func growTo[T any](s *[]T, n int) []T {
	if cap(*s) < n {
		*s = make([]T, n)
	}
	*s = (*s)[:n]
	return *s
}

// executeSingle answers one non-coalesced command. Returns true for QUIT.
func (c *conn) executeSingle(cmd Command) (quit bool) {
	// Sampling ticks on every unit; attribution additionally needs a
	// store that can carry a Proc and a verb whose execution is one store
	// call (the point commands). A sampled PING or RANGE still produces a
	// trace record — wall time, batch size, queue wait — with zero step
	// counts.
	obs := c.srv.obs
	var sampled, attrib bool
	var start int64
	if obs != nil {
		sampled = obs.sampleNext()
		attrib = sampled && c.srv.procStore != nil && cmd.Verb.batchable()
		if attrib {
			c.procStats.Reset()
		}
		start = telemetry.Nanotime()
	}
	switch cmd.Verb {
	case VerbPing:
		c.writeLine("+PONG")
	case VerbSet:
		if attrib {
			c.writeBool(c.srv.procStore.InsertProc(&c.proc, cmd.Key, cmd.Value))
		} else {
			c.writeBool(c.srv.store.Insert(cmd.Key, cmd.Value))
		}
	case VerbGet:
		var v string
		var ok bool
		if attrib {
			v, ok = c.srv.procStore.GetProc(&c.proc, cmd.Key)
		} else {
			v, ok = c.srv.store.Get(cmd.Key)
		}
		c.writeValue(v, ok)
	case VerbDel:
		if attrib {
			c.writeBool(c.srv.procStore.DeleteProc(&c.proc, cmd.Key))
		} else {
			c.writeBool(c.srv.store.Delete(cmd.Key))
		}
	case VerbLen:
		c.writeInt(c.srv.store.Len())
	case VerbRange:
		c.executeRange(cmd.Key, cmd.Hi)
	case VerbQuit:
		c.writeLine("+OK")
		quit = true
	}
	if obs != nil {
		c.noteUnit(cmd.Verb, cmd.Key, 1, telemetry.Nanotime()-start, sampled, attrib)
	}
	return quit
}

// stampRun records the run's read-complete instant when observability is
// attached; the stamp is the zero point of the run's command latencies.
func (c *conn) stampRun(r *workRun) {
	if c.srv.obs != nil {
		r.enq = telemetry.Nanotime()
	}
}

// noteUnit records one executed unit: its batch-size sample, its pending
// latency record (completed after the flush), the slow-command counter,
// and — when the unit is trace-sampled or slow — its trace record. attrib
// marks units whose store call ran with the connection's Proc attached,
// i.e. whose step counts in the trace are exact rather than zero.
func (c *conn) noteUnit(v Verb, key, n int, elapsed int64, sampled, attrib bool) {
	obs := c.srv.obs
	obs.recordBatch(v, n)
	c.pend = append(c.pend, pendUnit{verb: v, class: uint8(batchClass(n)), n: uint32(n)})
	slow := elapsed >= obs.slowNanos
	if slow {
		c.srv.addCounter(instrument.CtrCmdsSlow, uint64(n))
	}
	if !sampled && !slow {
		return
	}
	var stats *core.OpStats
	if attrib {
		stats = &c.procStats
	}
	obs.trace(v, key, n, elapsed, c.queueWait, sampled, slow, stats)
}

// finishObs completes the latency records of the just-flushed run: every
// command in it shares the run's read-complete-to-write-flushed span.
func (c *conn) finishObs(enq int64) {
	obs := c.srv.obs
	if obs == nil || len(c.pend) == 0 {
		return
	}
	now := telemetry.Nanotime()
	for _, p := range c.pend {
		obs.recordLatency(p.verb, int(p.class), now-enq, uint64(p.n))
	}
	c.pend = c.pend[:0]
}

// executeRange collects [lo, hi) up to MaxRange pairs before writing
// anything, so an oversized scan can fail cleanly with -ERR instead of a
// truncated multi-line answer.
func (c *conn) executeRange(lo, hi int) {
	type pair struct {
		k int
		v string
	}
	maxR := c.srv.cfg.MaxRange
	pairs := make([]pair, 0, 16)
	over := false
	c.srv.store.AscendRange(lo, hi, func(k int, v string) bool {
		if len(pairs) >= maxR {
			over = true
			return false
		}
		pairs = append(pairs, pair{k, v})
		return true
	})
	if over {
		c.writeErr(errors.New("range result exceeds " + strconv.Itoa(maxR) + " keys"))
		return
	}
	c.bw.WriteByte('*')
	c.bw.Write(strconv.AppendInt(c.numBuf(), int64(len(pairs)), 10))
	c.bw.WriteByte('\n')
	for _, p := range pairs {
		c.bw.Write(strconv.AppendInt(c.numBuf(), int64(p.k), 10))
		c.bw.WriteByte(' ')
		c.bw.WriteString(p.v)
		c.bw.WriteByte('\n')
	}
}

func (c *conn) numBuf() []byte { return c.scratchNum[:0] }

func (c *conn) writeLine(s string) {
	c.bw.WriteString(s)
	c.bw.WriteByte('\n')
}

func (c *conn) writeBool(ok bool) {
	if ok {
		c.writeLine(":1")
	} else {
		c.writeLine(":0")
	}
}

func (c *conn) writeInt(n int) {
	c.bw.WriteByte(':')
	c.bw.Write(strconv.AppendInt(c.numBuf(), int64(n), 10))
	c.bw.WriteByte('\n')
}

func (c *conn) writeValue(v string, ok bool) {
	if !ok {
		c.writeLine("_")
		return
	}
	c.bw.WriteByte('$')
	c.bw.WriteString(v)
	c.bw.WriteByte('\n')
}

func (c *conn) writeErr(err error) {
	c.bw.WriteString("-ERR ")
	c.bw.WriteString(err.Error())
	c.bw.WriteByte('\n')
}

// flush pushes buffered responses to the client under the write deadline.
func (c *conn) flush() error {
	if c.bw.Buffered() == 0 {
		return nil
	}
	c.nc.SetWriteDeadline(time.Now().Add(c.srv.cfg.WriteTimeout))
	return c.bw.Flush()
}
