package server

import (
	"fmt"
	"io"
	"net"
	"strings"
	"testing"

	"repro/lockfree"
)

// wirePair serves a store over one end of a net.Pipe with deadlines
// disabled: pipe deadlines allocate a timer per arm, which would charge
// transport bookkeeping to the wire path being measured.
func wirePair(tb testing.TB, store Store) net.Conn {
	tb.Helper()
	srv := New(Config{ReadTimeout: -1, WriteTimeout: -1}, store)
	cl, se := net.Pipe()
	go srv.ServeConn(se)
	tb.Cleanup(func() { cl.Close() })
	return cl
}

// exchange writes one pre-rendered pipelined request and reads back
// exactly respLen reply bytes; allocation-free on the client side so
// AllocsPerRun sees only the server.
func exchange(tb testing.TB, cl net.Conn, req, resp []byte) {
	if _, err := cl.Write(req); err != nil {
		tb.Fatal(err)
	}
	if _, err := io.ReadFull(cl, resp); err != nil {
		tb.Fatal(err)
	}
}

// pinAllocs asserts the steady-state server-side allocation count of one
// pipelined exchange. A few unmeasured warm-up rounds first let the
// connection's arenas, free lists and reply buffer reach their high-water
// capacity — the pin is about steady state, not cold start.
func pinAllocs(t *testing.T, cl net.Conn, req string, respLen int, maxAllocs float64) {
	t.Helper()
	reqB := []byte(req)
	respB := make([]byte, respLen)
	for i := 0; i < 50; i++ {
		exchange(t, cl, reqB, respB)
	}
	got := testing.AllocsPerRun(100, func() {
		exchange(t, cl, reqB, respB)
	})
	if got > maxAllocs {
		t.Errorf("allocs per pipelined exchange = %.3f, want <= %.1f", got, maxAllocs)
	}
}

// TestWireAllocsLine pins the line-protocol hot path: depth-16 pipelined
// GET and DEL runs execute with zero server-side allocations, SET stays
// under one allocation amortized (the value arena's chunk cycle).
func TestWireAllocsLine(t *testing.T) {
	const depth = 16
	cl := wirePair(t, lockfree.NewSkipList[int, string]())

	// GET misses: 16 x "_\n" replies.
	t.Run("get", func(t *testing.T) {
		pinAllocs(t, cl, strings.Repeat("GET 42\n", depth), depth*len("_\n"), 0)
	})
	// DEL on absent keys: 16 x ":0\n".
	t.Run("del", func(t *testing.T) {
		pinAllocs(t, cl, strings.Repeat("DEL 42\n", depth), depth*len(":0\n"), 0)
	})
	// Duplicate-key SETs: values intern into the arena every time even
	// though the store keeps the first, so the arena chunk cycle is
	// exercised; replies are 16 x ":0\n" after the first round seeds key 7.
	t.Run("set", func(t *testing.T) {
		pinAllocs(t, cl, strings.Repeat("SET 7 valuevaluevaluevalue\n", depth), depth*len(":0\n"), 1)
	})
}

// TestWireAllocsResp pins the same paths through the RESP codec.
func TestWireAllocsResp(t *testing.T) {
	const depth = 16
	cl := wirePair(t, lockfree.NewSkipList[int, string]())

	get := respCmd("GET", "42")
	del := respCmd("DEL", "42")
	set := respCmd("SET", "7", "valuevaluevaluevalue")

	t.Run("get", func(t *testing.T) {
		pinAllocs(t, cl, strings.Repeat(get, depth), depth*len("$-1\r\n"), 0)
	})
	t.Run("del", func(t *testing.T) {
		pinAllocs(t, cl, strings.Repeat(del, depth), depth*len(":0\r\n"), 0)
	})
	t.Run("set", func(t *testing.T) {
		pinAllocs(t, cl, strings.Repeat(set, depth), depth*len("+OK\r\n"), 1)
	})
}

// benchWire measures one pipelined exchange per iteration; with
// -benchmem the allocs/op column is the wire path's allocation floor,
// gated hard by scripts/benchdiff.sh.
func benchWire(b *testing.B, req string, respLen int) {
	cl := wirePair(b, lockfree.NewSkipList[int, string]())
	reqB := []byte(req)
	respB := make([]byte, respLen)
	for i := 0; i < 20; i++ { // steady state before the clock starts
		exchange(b, cl, reqB, respB)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		exchange(b, cl, reqB, respB)
	}
}

const benchDepth = 16

func BenchmarkServerWireGetLine(b *testing.B) {
	benchWire(b, strings.Repeat("GET 42\n", benchDepth), benchDepth*len("_\n"))
}

func BenchmarkServerWireGetResp(b *testing.B) {
	benchWire(b, strings.Repeat(respCmd("GET", "42"), benchDepth), benchDepth*len("$-1\r\n"))
}

func BenchmarkServerWireDelLine(b *testing.B) {
	benchWire(b, strings.Repeat("DEL 42\n", benchDepth), benchDepth*len(":0\n"))
}

func BenchmarkServerWireDelResp(b *testing.B) {
	benchWire(b, strings.Repeat(respCmd("DEL", "42"), benchDepth), benchDepth*len(":0\r\n"))
}

func BenchmarkServerWireSetLine(b *testing.B) {
	benchWire(b, strings.Repeat("SET 7 valuevaluevaluevalue\n", benchDepth), benchDepth*len(":0\n"))
}

func BenchmarkServerWireSetResp(b *testing.B) {
	benchWire(b, strings.Repeat(respCmd("SET", "7", "valuevaluevaluevalue"), benchDepth), benchDepth*len("+OK\r\n"))
}

// TestValueArenaIntern is the unit contract of the chunk-interning arena:
// returned strings are stable copies, independent of later interning and
// of mutation of the source buffer, and small values amortize far below
// one allocation each.
func TestValueArenaIntern(t *testing.T) {
	var a valueArena
	src := []byte("hello")
	s1 := a.intern(src)
	src[0] = 'X' // the arena copied: mutating the source must not show
	s2 := a.intern([]byte("world"))
	if s1 != "hello" || s2 != "world" {
		t.Fatalf("interned %q, %q; want hello, world", s1, s2)
	}

	var got []string
	for i := 0; i < 10000; i++ {
		got = append(got, a.intern([]byte(fmt.Sprintf("v%04d", i))))
	}
	for i, s := range got {
		if want := fmt.Sprintf("v%04d", i); s != want {
			t.Fatalf("interned value %d corrupted: %q, want %q", i, s, want)
		}
	}

	// A value larger than the chunk size gets its own dedicated chunk.
	huge := strings.Repeat("z", arenaChunkBytes+1)
	if s := a.intern([]byte(huge)); s != huge {
		t.Fatal("oversized value corrupted by interning")
	}
}

// TestReplyWriterVectored exercises the writev assembly: big values are
// spliced by reference between framing cuts and the output matches a
// straightforward serialization, across several flush cycles.
func TestReplyWriterVectored(t *testing.T) {
	big1 := strings.Repeat("A", bigValueBytes)
	big2 := strings.Repeat("B", 3*bigValueBytes)
	for round := 0; round < 3; round++ {
		var w replyWriter
		cl, se := net.Pipe()
		done := make(chan string, 1)
		go func() {
			b, _ := io.ReadAll(cl)
			done <- string(b)
		}()

		w.literal("+OK\r\n")
		w.value("small")
		w.literal("\r\n")
		w.value(big1)
		w.value(big2)
		w.literal(":1\r\n")
		want := "+OK\r\nsmall\r\n" + big1 + big2 + ":1\r\n"
		if got := w.buffered(); got != len(want) {
			t.Fatalf("buffered() = %d, want %d", got, len(want))
		}
		if err := w.flush(se); err != nil {
			t.Fatal(err)
		}
		se.Close()
		if got := <-done; got != want {
			t.Fatalf("flushed %d bytes, want %d; content mismatch", len(got), len(want))
		}
		if w.buffered() != 0 {
			t.Fatal("writer not reset after flush")
		}
	}
}
