package server

import (
	"context"
	"errors"
	"time"
)

// Shutdowner is anything that can drain itself under a deadline: the TCP
// Server, the obshttp admin Handle, and any future listener.
type Shutdowner interface {
	Shutdown(ctx context.Context) error
}

// GracefulShutdown drains every Shutdowner under one shared timeout,
// concurrently, and joins the first error of each (a context deadline on
// one listener must not eat another's drain window). It is the single
// shutdown path every command-line tool routes its listeners through.
func GracefulShutdown(timeout time.Duration, ss ...Shutdowner) error {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	errs := make([]error, len(ss))
	done := make(chan int, len(ss))
	for i, s := range ss {
		go func(i int, s Shutdowner) {
			errs[i] = s.Shutdown(ctx)
			done <- i
		}(i, s)
	}
	for range ss {
		<-done
	}
	return errors.Join(errs...)
}
