// resp.go implements the RESP2 side of the wire: the Redis serialization
// protocol's multibulk request frames ("*<n>\r\n" then n bulk strings
// "$<len>\r\n<payload>\r\n"), selected per connection when the first byte
// received is '*'. The command set is the same as the line protocol's,
// under Redis spellings where they exist: PING/SET/GET/DEL, DBSIZE for
// LEN, and RANGE as a custom command. Replies use RESP framing: "+OK",
// ":<n>", "$<len>" bulks, "$-1" for a miss, "-ERR <msg>", and a flat
// "*<2n>" array of key/value bulks for RANGE. Like the line protocol,
// malformed frames fail the request, never the process; only a broken
// transport (or a frame so damaged the stream cannot stay in sync) closes
// the connection.
package server

import (
	"bytes"
	"errors"
	"fmt"
	"io"
)

// maxRespArgs bounds one RESP command's argument count. The widest real
// command takes three; the slack lets clients probing with optional
// flags (e.g. redis-benchmark's "SET key val EX 60"-style variants) get
// a precise "-ERR unsupported option" answer instead of a generic arity
// error, while still refusing a hostile million-arg header outright.
const maxRespArgs = 16

// maxRespDiscard bounds how large a declared bulk the server will read
// and discard to keep the stream in sync after rejecting a request (for
// example a value above MaxLineBytes, or arguments of an unknown
// command). Beyond it the frame is treated as hostile and the stream is
// allowed to desynchronize.
const maxRespDiscard = 8 << 20

// Interned RESP protocol errors, phrased like Redis's own so existing
// client error handling matches.
var (
	errRespArrayHeader = errors.New("protocol error: invalid multibulk length")
	errRespBulkHeader  = errors.New("protocol error: invalid bulk length")
	errRespBulkTrailer = errors.New("protocol error: expected CRLF after bulk payload")
	errRespTooManyArgs = errors.New("protocol error: too many arguments")
	errRespBulkTooLong = errors.New("protocol error: bulk length exceeds the configured maximum")
	// errRespUnsupportedOption rejects SET options (EX, NX, ...) whose
	// semantics the server would otherwise silently drop.
	errRespUnsupportedOption = errors.New("unsupported option")
)

// readRespEntry reads one request from a RESP connection. A '*' opens a
// multibulk frame; anything else is handled as a Redis "inline command",
// which shares the line protocol's grammar. The returned error is
// transport-fatal; per-request failures travel inside the entry.
func (c *conn) readRespEntry() (entry, error) {
	b, err := c.br.Peek(1)
	if err != nil {
		return entry{}, err
	}
	if b[0] != '*' {
		return c.readLineEntry()
	}
	line, err := c.readLine()
	if err != nil {
		if errors.Is(err, ErrLineTooLong) {
			return entry{err: err}, nil
		}
		return entry{}, err
	}
	line = trimCR(line)
	n, ok := parseWireInt(line[1:])
	if !ok || n < 1 {
		return entry{err: errRespArrayHeader}, nil
	}
	if n > maxRespArgs {
		return entry{err: errRespTooManyArgs}, nil
	}
	return c.readRespCommand(int(n))
}

// readRespCommand reads the n bulk arguments of one multibulk frame and
// parses them into an entry. Rejected commands (unknown verb, wrong
// arity, bad key) still consume their declared bulks so the stream stays
// in sync and only the offending request fails.
func (c *conn) readRespCommand(n int) (entry, error) {
	verbTok, reqErr, fatal := c.readBulk()
	if fatal != nil || reqErr != nil {
		return entry{err: reqErr}, fatal
	}
	var verb Verb
	switch {
	case asciiEqualFold(verbTok, "GET"):
		verb = VerbGet
	case asciiEqualFold(verbTok, "SET"):
		verb = VerbSet
	case asciiEqualFold(verbTok, "DEL"):
		verb = VerbDel
	case asciiEqualFold(verbTok, "PING"):
		verb = VerbPing
	case asciiEqualFold(verbTok, "DBSIZE"), asciiEqualFold(verbTok, "LEN"):
		verb = VerbLen
	case asciiEqualFold(verbTok, "RANGE"):
		verb = VerbRange
	case asciiEqualFold(verbTok, "QUIT"):
		verb = VerbQuit
	default:
		// Unknown commands (redis-cli opens with COMMAND DOCS, benchmarks
		// probe CONFIG GET) answer -ERR like Redis does for unsupported
		// ones, after consuming their arguments.
		err := fmt.Errorf("unknown command %q", clip(verbTok))
		return entry{err: err}, c.discardBulks(n - 1)
	}
	want := 1
	switch verb {
	case VerbGet, VerbDel:
		want = 2
	case VerbSet, VerbRange:
		want = 3
	}
	if n < want {
		return entry{err: arityErr(verb)}, c.discardBulks(n - 1)
	}
	if n > want {
		if verb == VerbSet {
			// Trailing SET options (EX/NX and friends from standard
			// benchmark drivers) name semantics this server does not
			// implement — values are immutable insert-if-absent with no
			// expiry. Answering +OK while dropping the option would lie
			// to the client, so the request is refused outright.
			return entry{err: errRespUnsupportedOption}, c.discardBulks(n - 1)
		}
		return entry{err: arityErr(verb)}, c.discardBulks(n - 1)
	}

	// From here on, a per-request failure must still consume the frame's
	// remaining bulks (as the unknown-command and arity paths above do):
	// returning early would leave unread bulks in the stream to be
	// re-parsed as the next command, misaligning every later reply.
	switch verb {
	case VerbGet, VerbDel:
		k, reqErr, fatal := c.readRespKey()
		if fatal != nil {
			return entry{}, fatal
		}
		if reqErr != nil {
			return entry{err: reqErr}, c.discardBulks(n - 2)
		}
		return entry{cmd: Command{Verb: verb, Key: k}}, nil

	case VerbSet:
		k, reqErr, fatal := c.readRespKey()
		if fatal != nil {
			return entry{}, fatal
		}
		if reqErr != nil {
			return entry{err: reqErr}, c.discardBulks(n - 2)
		}
		val, reqErr, fatal := c.readBulk()
		if fatal != nil {
			return entry{}, fatal
		}
		if reqErr != nil {
			return entry{err: reqErr}, c.discardBulks(n - 3)
		}
		if len(val) == 0 {
			return entry{err: arityErr(VerbSet)}, c.discardBulks(n - 3)
		}
		v := c.arena.intern(val)
		if err := c.discardBulks(n - 3); err != nil {
			return entry{}, err
		}
		return entry{cmd: Command{Verb: VerbSet, Key: k, Value: v}}, nil

	case VerbRange:
		lo, reqErr, fatal := c.readRespKey()
		if fatal != nil {
			return entry{}, fatal
		}
		if reqErr != nil {
			return entry{err: reqErr}, c.discardBulks(n - 2)
		}
		hi, reqErr, fatal := c.readRespKey()
		if fatal != nil {
			return entry{}, fatal
		}
		if reqErr != nil {
			return entry{err: reqErr}, c.discardBulks(n - 3)
		}
		return entry{cmd: Command{Verb: VerbRange, Key: lo, Hi: hi}}, nil

	default: // PING, LEN/DBSIZE, QUIT
		return entry{cmd: Command{Verb: verb}}, nil
	}
}

// readBulk reads one "$<len>\r\n<payload>\r\n" frame. The payload is a
// view of c.respBuf, valid only until the next readBulk on this
// connection. reqErr is a client-facing per-request failure; fatal tears
// the connection down. A declared length above MaxLineBytes is consumed
// and rejected so the stream stays in sync.
func (c *conn) readBulk() (payload []byte, reqErr, fatal error) {
	line, err := c.readLine()
	if err != nil {
		if errors.Is(err, ErrLineTooLong) {
			return nil, ErrLineTooLong, nil
		}
		return nil, nil, err
	}
	line = trimCR(line)
	if len(line) == 0 || line[0] != '$' {
		return nil, errRespBulkHeader, nil
	}
	l, ok := parseWireInt(line[1:])
	if !ok || l < 0 || l > maxRespDiscard {
		return nil, errRespBulkHeader, nil
	}
	if int(l) > c.srv.cfg.MaxLineBytes {
		if err := c.discardPayload(int(l) + 2); err != nil {
			return nil, nil, err
		}
		return nil, errRespBulkTooLong, nil
	}
	need := int(l) + 2
	if cap(c.respBuf) < need {
		c.respBuf = make([]byte, need)
	}
	buf := c.respBuf[:need]
	if _, err := io.ReadFull(c.br, buf); err != nil {
		return nil, nil, err
	}
	if buf[need-2] != '\r' || buf[need-1] != '\n' {
		return nil, errRespBulkTrailer, nil
	}
	return buf[:l], nil, nil
}

// readRespKey reads one bulk and parses it as a key. Beyond the strict
// signed-decimal grammar, a token with a trailing run of digits (the
// "key:000000000042" shape every Redis benchmark driver generates) maps
// to the integer spelled by that run, so redis-benchmark and
// memtier_benchmark drive the integer-keyed store unmodified. The line
// protocol deliberately does not get this mapping: its strict grammar is
// a documented, tested contract.
func (c *conn) readRespKey() (key int, reqErr, fatal error) {
	tok, reqErr, fatal := c.readBulk()
	if fatal != nil || reqErr != nil {
		return 0, reqErr, fatal
	}
	if k, ok := parseWireInt(tok); ok {
		return int(k), nil, nil
	}
	i := len(tok)
	for i > 0 && tok[i-1] >= '0' && tok[i-1] <= '9' {
		i--
	}
	if i == len(tok) {
		return 0, fmt.Errorf("key %q is not a signed 64-bit integer", clip(tok)), nil
	}
	// A run too long for int64 is rejected, not truncated: truncation
	// would silently collide distinct keys that share a 19-digit suffix.
	k, ok := parseWireInt(tok[i:])
	if !ok {
		return 0, fmt.Errorf("key %q trailing digits overflow a signed 64-bit integer", clip(tok)), nil
	}
	return int(k), nil, nil
}

// discardBulks consumes k remaining bulk frames of an already-rejected
// command. Bulk-level errors are swallowed — the request already has its
// error — but a malformed header means the sync point is lost and
// discarding must stop.
func (c *conn) discardBulks(k int) error {
	for ; k > 0; k-- {
		_, reqErr, fatal := c.readBulk()
		if fatal != nil {
			return fatal
		}
		if reqErr != nil {
			return nil
		}
	}
	return nil
}

// discardPayload reads and drops exactly n bytes.
func (c *conn) discardPayload(n int) error {
	_, err := c.br.Discard(n)
	return err
}

// trimCR strips one trailing '\r'.
func trimCR(line []byte) []byte {
	if n := len(line); n > 0 && line[n-1] == '\r' {
		return line[:n-1]
	}
	return line
}

// bufferedResp reports whether the reader's buffer holds at least one
// complete RESP request, so the coalescer can keep extending a run
// without ever blocking. Like bufferedLine it is conservative only about
// blocking: a frame judged malformed counts as complete, because the
// parser will fail it from buffered bytes without waiting. Inline (non-
// '*') input falls back to the complete-line check.
func (c *conn) bufferedResp() bool {
	buf, _ := c.br.Peek(c.br.Buffered())
	if len(buf) == 0 {
		return false
	}
	if buf[0] != '*' {
		return bytes.IndexByte(buf, '\n') >= 0
	}
	pos := 0
	nl := bytes.IndexByte(buf, '\n')
	if nl < 0 {
		return len(buf) >= c.srv.cfg.MaxLineBytes // oversized header fails without blocking
	}
	n, ok := parseWireInt(trimCR(buf[1:nl]))
	if !ok || n < 1 || n > maxRespArgs {
		return true // header malformed: parser fails it immediately
	}
	pos = nl + 1
	for arg := int64(0); arg < n; arg++ {
		rest := buf[pos:]
		j := bytes.IndexByte(rest, '\n')
		if j < 0 {
			return len(rest) >= c.srv.cfg.MaxLineBytes
		}
		hdr := trimCR(rest[:j])
		if len(hdr) == 0 || hdr[0] != '$' {
			return true // parser rejects and resyncs from here
		}
		l, ok := parseWireInt(hdr[1:])
		if !ok || l < 0 || l > maxRespDiscard {
			return true
		}
		pos += j + 1 + int(l) + 2
		if pos > len(buf) {
			return false // payload still in flight
		}
	}
	return true
}
