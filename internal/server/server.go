package server

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/instrument"
	"repro/internal/telemetry"
	"repro/internal/wal"
)

// Store is the ordered key-value surface the server fronts: the subset of
// the lockfree facade (SkipList, ShardedSkipList) the protocol needs.
// Point methods must be linearizable; the batch methods sort their
// argument in place and report positionally against the sorted order,
// exactly like the lockfree batch contract.
type Store interface {
	Insert(key int, value string) bool
	Get(key int) (string, bool)
	Delete(key int) bool
	Len() int
	AscendRange(from, to int, fn func(key int, value string) bool)
	InsertBatch(items []core.KV[int, string], inserted []bool) int
	GetBatch(keys []int, vals []string, found []bool) int
	DeleteBatch(keys []int, deleted []bool) int
}

// ProcStore is the optional attribution capability of a Store: the same
// operations with a per-process instrumentation context attached, so a
// sampled request can report exactly which essential steps, CAS retries
// and backoff waits it paid. The lockfree facade types (SkipList,
// ShardedSkipList) implement it; the server detects it with a type
// assertion at construction and falls back to unattributed traces when
// the store lacks it.
type ProcStore interface {
	InsertProc(p *core.Proc, key int, value string) bool
	GetProc(p *core.Proc, key int) (string, bool)
	DeleteProc(p *core.Proc, key int) bool
	InsertBatchProc(p *core.Proc, items []core.KV[int, string], inserted []bool) int
	GetBatchProc(p *core.Proc, keys []int, vals []string, found []bool) int
	DeleteBatchProc(p *core.Proc, keys []int, deleted []bool) int
}

// Config bounds a Server. The zero value is usable: every limit falls
// back to the default documented on its field.
type Config struct {
	// Addr is the TCP listen address for ListenAndServe (default
	// "127.0.0.1:7379").
	Addr string
	// MaxConns caps concurrently open connections; connections beyond it
	// are shed at accept time with "-ERR server busy" (default 1024).
	MaxConns int
	// ReadTimeout bounds how long a connection may sit idle between
	// requests; an idle connection is closed (default 5m). A negative
	// value disables the idle deadline entirely — benchmark transports
	// like net.Pipe allocate per deadline arm, which would poison the
	// wire path's allocation accounting.
	ReadTimeout time.Duration
	// WriteTimeout bounds each response flush (default 10s). Negative
	// disables the write deadline, as for ReadTimeout.
	WriteTimeout time.Duration
	// MaxLineBytes bounds one request line, and one RESP bulk payload. An
	// overlong request is discarded and answered -ERR; the connection
	// keeps serving (default 64 KiB).
	MaxLineBytes int
	// MaxBatch caps how many pipelined commands one coalesced run may
	// absorb (default 256).
	MaxBatch int
	// MaxRange caps the number of pairs one RANGE may return; a larger
	// scan fails the request, not the process (default 4096).
	MaxRange int
	// DrainGrace is the window a draining connection keeps reading after
	// Shutdown begins, so commands already on the wire are served rather
	// than dropped (default 250ms).
	DrainGrace time.Duration
	// GroupBatch opts the server into cross-connection group batching:
	// connections publish parsed SET/GET/DEL units into per-key-range
	// lock-free submission rings and a small pool of executor goroutines
	// merges same-verb units across connections into one sorted store
	// batch per group (default off). The trade is bounded added latency
	// (at most ~BatchWindow) for the amortized per-element search cost of
	// the batch path — the win regime is many connections at shallow
	// pipeline depth, where per-connection coalescing never fires.
	GroupBatch bool
	// GroupExecutors caps the executor pool size in group-batching mode.
	// Zero derives the pool from the routing splitters: one executor per
	// key range (the store's shard count when it exposes Splitters). With
	// no splitters available the pool is a single executor.
	GroupExecutors int
	// GroupSplitters overrides the key-range routing of group batching:
	// len(GroupSplitters)+1 executors, each owning one contiguous range,
	// so executor batches are sorted single-range sub-runs. Nil asks the
	// store for its own shard splitters (ShardedSkipList exposes them),
	// aligning executor ranges with shard ranges.
	GroupSplitters []int
	// BatchWindow is the group-batching gather window: an executor closes
	// a group at MaxBatch units or after ~BatchWindow from the group's
	// first unit, whichever comes first (default 50µs).
	BatchWindow time.Duration
	// Durability selects the write-ahead-log mode: DurabilityOff (or "")
	// serves purely in memory; DurabilityAsync publishes every applied
	// mutation to WAL but acks without waiting for the disk;
	// DurabilitySync additionally holds each run's reply flush until the
	// run's last mutation is fsync-durable, so a client-visible ack
	// implies the write survives a crash. Async and sync require WAL.
	Durability string
	// WAL is the open log mutations are published to. The server does
	// not own it: the caller opens it (replaying any tail first) and
	// closes it after Shutdown. Nil disables logging regardless of
	// Durability.
	WAL *wal.Log
}

// Durability modes for Config.Durability.
const (
	DurabilityOff   = "off"
	DurabilityAsync = "async"
	DurabilitySync  = "sync"
)

func (c Config) withDefaults() Config {
	if c.Addr == "" {
		c.Addr = "127.0.0.1:7379"
	}
	if c.MaxConns <= 0 {
		c.MaxConns = 1024
	}
	if c.ReadTimeout == 0 {
		c.ReadTimeout = 5 * time.Minute
	}
	if c.WriteTimeout == 0 {
		c.WriteTimeout = 10 * time.Second
	}
	if c.MaxLineBytes <= 0 {
		c.MaxLineBytes = 64 << 10
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 256
	}
	if c.MaxRange <= 0 {
		c.MaxRange = 4096
	}
	if c.DrainGrace <= 0 {
		c.DrainGrace = 250 * time.Millisecond
	}
	if c.BatchWindow <= 0 {
		c.BatchWindow = 50 * time.Microsecond
	}
	return c
}

// Server serves the wire protocols (line and RESP2, auto-detected per
// connection) over TCP. Construct with New; a Server serves one Store and
// may not be reused after Shutdown.
type Server struct {
	cfg       Config
	store     Store
	procStore ProcStore           // store's attribution capability; nil when absent
	tel       *telemetry.Recorder // optional; nil disables counters
	obs       *Obs                // optional; nil disables request observability
	gb        *groupBatcher       // group-batching engine; nil unless cfg.GroupBatch
	wal       *wal.Log            // mutation log; nil when durability is off
	walSync   bool                // hold reply flushes for fsync (DurabilitySync)

	mu       sync.Mutex
	ln       net.Listener
	conns    map[*conn]struct{}
	connGone *sync.Cond // broadcast when conns drains to empty
	draining bool
	done     bool

	ready atomic.Bool
}

// New returns a Server over store with the given config (zero fields get
// defaults).
func New(cfg Config, store Store) *Server {
	s := &Server{
		cfg:   cfg.withDefaults(),
		store: store,
		conns: make(map[*conn]struct{}),
	}
	s.connGone = sync.NewCond(&s.mu)
	if ps, ok := store.(ProcStore); ok {
		s.procStore = ps
	}
	switch s.cfg.Durability {
	case DurabilityAsync:
		s.wal = s.cfg.WAL
	case DurabilitySync:
		s.wal = s.cfg.WAL
		s.walSync = s.wal != nil
	}
	if s.cfg.GroupBatch {
		s.gb = newGroupBatcher(s)
		s.gb.start()
	}
	return s
}

// SetTelemetry attaches rec to the server's connection and coalescing
// counters (conn_accepted, conn_active, conn_rejected, cmds_coalesced).
// Attach before Serve; nil (the default) disables them. The store's own
// telemetry is attached separately, at store construction.
func (s *Server) SetTelemetry(rec *telemetry.Recorder) { s.tel = rec }

// SetObs attaches request observability: per-verb latency histograms,
// batch-size and queue-wait histograms, and the sampled trace ring.
// Attach before Serve; nil (the default) disables the whole layer, whose
// cost then is one nil-check branch per run and unit.
func (s *Server) SetObs(o *Obs) { s.obs = o }

// Obs returns the attached observability state, or nil.
func (s *Server) Obs() *Obs { return s.obs }

func (s *Server) addCounter(c instrument.Counter, n uint64) {
	if s.tel != nil {
		s.tel.AddCounter(c, n)
	}
}

func (s *Server) addGauge(c instrument.Counter, delta int64) {
	if s.tel != nil {
		s.tel.AddGauge(c, delta)
	}
}

// ListenAndServe binds cfg.Addr and serves until Shutdown. Like
// http.ListenAndServe it blocks; run it on its own goroutine and read the
// bound address with Addr (useful with a ":0" config).
func (s *Server) ListenAndServe() error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// ErrServerClosed is returned by Serve after a Shutdown stops the accept
// loop, mirroring net/http's contract.
var ErrServerClosed = errors.New("server: closed")

// Serve accepts connections on ln until Shutdown. Connections beyond
// MaxConns are shed immediately with "-ERR server busy" (counted as
// conn_rejected) so overload degrades by refusing work, not by queueing
// unboundedly.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.done || s.draining {
		s.mu.Unlock()
		ln.Close()
		return ErrServerClosed
	}
	s.ln = ln
	s.mu.Unlock()
	s.ready.Store(true)

	for {
		nc, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			draining := s.draining || s.done
			s.mu.Unlock()
			if draining {
				return ErrServerClosed
			}
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				continue
			}
			return err
		}
		s.accept(nc)
	}
}

// accept admits or sheds one raw connection.
func (s *Server) accept(nc net.Conn) {
	s.mu.Lock()
	if s.draining || s.done || len(s.conns) >= s.cfg.MaxConns {
		s.mu.Unlock()
		s.addCounter(instrument.CtrConnRejected, 1)
		// Best-effort refusal notice; the client may already be gone.
		nc.SetWriteDeadline(time.Now().Add(time.Second))
		fmt.Fprintf(nc, "-ERR server busy\n")
		nc.Close()
		return
	}
	c := newConn(s, nc)
	s.conns[c] = struct{}{}
	s.mu.Unlock()
	s.addCounter(instrument.CtrConnAccepted, 1)
	s.addGauge(instrument.CtrConnActive, 1)
	go c.serve()
}

// ServeConn runs the protocol on an already-established transport (any
// net.Conn, e.g. one side of a net.Pipe in tests) and returns when the
// connection closes. It bypasses the MaxConns accept-time shedding but is
// otherwise identical to an accepted connection, including counters and
// shutdown draining.
func (s *Server) ServeConn(nc net.Conn) {
	s.mu.Lock()
	if s.done {
		s.mu.Unlock()
		nc.Close()
		return
	}
	c := newConn(s, nc)
	s.conns[c] = struct{}{}
	if s.draining {
		// Shutdown already swept the connection set; this late arrival
		// must drain itself or the drain would wait out its idle timeout.
		c.startDrain()
	}
	s.mu.Unlock()
	s.addCounter(instrument.CtrConnAccepted, 1)
	s.addGauge(instrument.CtrConnActive, 1)
	c.serve()
}

// remove unregisters a finished connection. The connection set itself is
// the liveness count Shutdown waits on — there is no separate WaitGroup
// whose Add could race a Wait crossing zero when a late ServeConn arrives
// mid-shutdown (a sync.WaitGroup reuse panic this design rules out). The
// conn_active gauge moves +1 strictly before the serving goroutine that
// performs the matching -1 exists, and remove runs exactly once per
// connection, so the gauge can never be observed negative; the -1 lands
// before the connection leaves the set, so once Shutdown's drain wait
// releases, every finished connection's decrement is already visible.
func (s *Server) remove(c *conn) {
	s.addGauge(instrument.CtrConnActive, -1)
	s.mu.Lock()
	delete(s.conns, c)
	if len(s.conns) == 0 {
		s.connGone.Broadcast()
	}
	s.mu.Unlock()
}

// Addr returns the listen address, or "" before Serve binds one.
func (s *Server) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Healthy is the /healthz probe: nil while the process can serve at all.
func (s *Server) Healthy() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.done {
		return errors.New("server shut down")
	}
	return nil
}

// Ready is the /readyz probe: nil only while the accept loop is running
// and not draining, so load balancers stop routing before shutdown cuts
// connections.
func (s *Server) Ready() error {
	if !s.ready.Load() {
		return errors.New("server not accepting connections")
	}
	return nil
}

// Shutdown gracefully stops the server: it stops accepting (readiness
// goes false, the listener closes), then puts every connection into
// draining — each keeps reading for DrainGrace so commands already on the
// wire are answered, finishes its queued runs, flushes, and closes. If
// every connection drains before ctx expires Shutdown returns nil;
// otherwise it force-closes the stragglers and returns ctx.Err().
// Shutdown is idempotent; concurrent calls all wait for the same drain.
func (s *Server) Shutdown(ctx context.Context) error {
	s.ready.Store(false)
	s.mu.Lock()
	alreadyDone := s.done
	s.draining = true
	if s.ln != nil {
		s.ln.Close()
	}
	for c := range s.conns {
		c.startDrain()
	}
	s.mu.Unlock()
	if alreadyDone {
		return nil
	}

	drained := make(chan struct{})
	go func() {
		s.mu.Lock()
		for len(s.conns) > 0 {
			s.connGone.Wait()
		}
		s.mu.Unlock()
		close(drained)
	}()
	var err error
	select {
	case <-drained:
	case <-ctx.Done():
		err = ctx.Err()
		s.mu.Lock()
		for c := range s.conns {
			c.nc.Close()
		}
		s.mu.Unlock()
		<-drained
	}
	// Executors stop only after every connection is gone: a connection
	// always waits out its published units before finishing a run, so once
	// the set drains the rings hold no live work and stopping cannot drop
	// a reply. stop is a sync.Once — concurrent Shutdowns both reach here.
	if s.gb != nil {
		s.gb.stop()
	}
	s.mu.Lock()
	s.done = true
	s.mu.Unlock()
	return err
}
