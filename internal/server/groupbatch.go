package server

import (
	"cmp"
	"runtime"
	"slices"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/instrument"
	"repro/internal/telemetry"
	"repro/internal/wal"
)

// Group batching: the serving layer's answer to the traffic shape where
// per-connection coalescing never fires — thousands of connections at
// pipeline depth 1. Each connection's writer publishes its run's
// batchable commands (SET/GET/DEL) as units into per-key-range lock-free
// MPSC submission rings; a small pool of executor goroutines drains a
// ring each, merges same-verb stretches *across connections* into one
// sorted batch call through an executor-owned Proc and finger, and
// completes each unit back to its owning connection. The connection then
// frames replies in request order and flushes vectored, exactly as in
// per-connection mode.
//
// The hand-offs stay non-blocking in the lock-free sense the store
// earns: publish is a ticket fetch-and-add plus one slot write (no lock,
// no allocation), completion is one atomic decrement plus a non-blocking
// wake. The only waiting is bounded-window waiting by design — the
// executor holds a group open for at most ~BatchWindow — so the trade is
// explicit: up to one window of added latency buys every unit in the
// group the batch path's amortized per-element search cost (DESIGN.md
// Section 12).
//
// Ordering contract: a connection publishes its run's units in request
// order into rings that are FIFO per producer, and an executor processes
// its gathered units as consecutive same-verb stretches in arrival
// order. Units of one connection therefore execute in program order
// except among same-verb duplicates of one key inside one stretch —
// the same "arbitrary among duplicates" the per-connection coalescer
// already grants — so per-connection per-key semantics are unchanged.

// gbUnit is one batchable command unit in flight between a connection
// and an executor. The owning connection writes the request fields and
// publishes; exactly one executor writes the result fields and calls
// gbComplete, after which it must not touch the unit again (the owner is
// free to reuse it for its next run).
type gbUnit struct {
	owner *conn
	verb  Verb
	key   int
	val   string // SET payload, interned in the owner's arena
	out   string // GET result
	ok    bool   // result flag
	enq   int64  // publish Nanotime (0 when observability is detached)
}

// gbSlot is one submission-ring cell: a sequence number in the ticket
// discipline of instrument.TraceRing plus the unit pointer it carries.
type gbSlot struct {
	seq atomic.Uint64
	u   *gbUnit
}

// gbRing is a fixed-size lock-free MPSC ring: any connection publishes,
// exactly one executor consumes. Producers claim a ticket by
// fetch-and-add and spin (bounded backpressure) while their slot is
// still occupied by an un-consumed unit from one lap ago; the consumer
// owns deq outright, so popping needs no atomics beyond the slot
// sequence. The sequence stores publish the unit pointer with
// release/acquire ordering, keeping the plain u field race-free.
type gbRing struct {
	mask  uint64
	slots []gbSlot

	enq atomic.Uint64
	deq uint64 // consumer-owned cursor

	// Dekker-style park handshake: the consumer sets sleeping before its
	// final emptiness check, producers check it after their final seq
	// store. Go atomics are sequentially consistent, so one side always
	// sees the other: either the consumer re-checks non-empty, or the
	// producer sends the (capacity-1, non-blocking) wake token.
	sleeping atomic.Bool
	wake     chan struct{}
}

func (r *gbRing) init(capacity int) {
	r.slots = make([]gbSlot, capacity)
	r.mask = uint64(capacity - 1)
	for i := range r.slots {
		r.slots[i].seq.Store(uint64(i))
	}
	r.wake = make(chan struct{}, 1)
}

// push publishes u; 0 allocations, lock-free, safe for any number of
// concurrent producers. A full ring spins the producer — bounded
// backpressure toward the executor, mirroring the paper's preference for
// helping over queue growth.
func (r *gbRing) push(u *gbUnit) {
	t := r.enq.Add(1) - 1
	s := &r.slots[t&r.mask]
	for s.seq.Load() != t {
		runtime.Gosched()
	}
	s.u = u
	s.seq.Store(t + 1)
	if r.sleeping.Load() {
		select {
		case r.wake <- struct{}{}:
		default:
		}
	}
}

// pop consumes the next unit, or nil when the ring is empty. Consumer
// only.
func (r *gbRing) pop() *gbUnit {
	s := &r.slots[r.deq&r.mask]
	if s.seq.Load() != r.deq+1 {
		return nil
	}
	u := s.u
	s.u = nil
	s.seq.Store(r.deq + uint64(len(r.slots)))
	r.deq++
	return u
}

// nonEmpty reports whether a unit is ready to pop. Consumer only.
func (r *gbRing) nonEmpty() bool {
	return r.slots[r.deq&r.mask].seq.Load() == r.deq+1
}

// gbSpinPolls is how long waiters spin (with yields) before parking —
// the spin-then-park discipline of the CAS backoff, applied to the
// executor's empty-ring wait and the connection's completion wait. On a
// single-P runtime the spin phase is counterproductive — every yielding
// waiter takes a scheduler turn away from the one goroutine that could
// satisfy it — so newGroupBatcher drops the spin budget to one check and
// waiters park immediately (see groupBatcher.spinPolls).
const gbSpinPolls = 128

// gbExecutor is one executor goroutine's state: its submission ring, its
// pinned attribution context, and its reusable gather/sort/batch
// scratch. All fields past the ring are goroutine-local.
type gbExecutor struct {
	gb   *groupBatcher
	ring gbRing

	proc      core.Proc
	procStats core.OpStats

	units []*gbUnit
	ord   []int
	keys  []int
	items []core.KV[int, string]
	vals  []string
	flags []bool
}

// groupBatcher is the engine: the splitter table routing keys to
// executors and the executor pool's lifecycle.
type groupBatcher struct {
	srv         *Server
	splitters   []int
	execs       []*gbExecutor
	windowNanos int64
	spinPolls   int

	stopped  chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

func newGroupBatcher(s *Server) *groupBatcher {
	g := &groupBatcher{
		srv:         s,
		windowNanos: s.cfg.BatchWindow.Nanoseconds(),
		spinPolls:   gbSpinPolls,
		stopped:     make(chan struct{}),
	}
	if runtime.GOMAXPROCS(0) == 1 {
		// Spinning waiters would monopolize the only P; park right away so
		// the scheduler hands it to whoever can make progress.
		g.spinPolls = 1
	}
	// Routing resolution: explicit config splitters win; otherwise ask
	// the store for its shard splitters so executor ranges coincide with
	// shard ranges and every executor batch is a single-shard sub-run; a
	// store without splitters gets one executor (one global ring).
	sp := s.cfg.GroupSplitters
	if sp == nil {
		if ss, ok := s.store.(interface{ Splitters() []int }); ok {
			sp = ss.Splitters()
		}
	}
	nexec := len(sp) + 1
	if e := s.cfg.GroupExecutors; e > 0 && e < nexec {
		// Thin the splitter set to e evenly sized unions of adjacent
		// ranges, so a smaller pool still owns contiguous key ranges.
		thin := make([]int, 0, e-1)
		for i := 1; i < e; i++ {
			thin = append(thin, sp[i*nexec/e-1])
		}
		sp, nexec = thin, e
	}
	g.splitters = sp
	ringCap := 1024
	for ringCap < 4*s.cfg.MaxBatch {
		ringCap <<= 1
	}
	g.execs = make([]*gbExecutor, nexec)
	for i := range g.execs {
		x := &gbExecutor{gb: g}
		x.ring.init(ringCap)
		x.proc.Stats = &x.procStats
		g.execs[i] = x
	}
	return g
}

func (g *groupBatcher) start() {
	for _, x := range g.execs {
		g.wg.Add(1)
		go x.run()
	}
}

// stop shuts the executor pool down and waits for it. Callers must
// guarantee no units are live in the rings — Shutdown does, by stopping
// only after every connection is gone. Idempotent and safe to call
// concurrently.
func (g *groupBatcher) stop() {
	g.stopOnce.Do(func() { close(g.stopped) })
	g.wg.Wait()
}

// ringFor routes key to its owning executor: the same binary search over
// splitters as internal/sharded's ShardFor, so when the splitters came
// from the store the executor range is exactly one shard.
func (g *groupBatcher) ringFor(key int) *gbExecutor {
	lo, hi := 0, len(g.splitters)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if g.splitters[mid] <= key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return g.execs[lo]
}

// run is the executor goroutine: pop a first unit, gather a group behind
// it, execute, repeat; park when the ring stays empty.
func (x *gbExecutor) run() {
	defer x.gb.wg.Done()
	for {
		u := x.ring.pop()
		if u == nil {
			if !x.park() {
				// Stopping. The rings hold no live units once every
				// connection has finished (each waits out its published
				// units before its run completes), but drain defensively
				// so a unit can never be stranded un-completed.
				for {
					u := x.ring.pop()
					if u == nil {
						return
					}
					x.gather(u)
					x.executeGroup()
				}
			}
			continue
		}
		x.gather(u)
		x.executeGroup()
	}
}

// park waits for the ring to go non-empty: a bounded yield-spin, then
// the sleeping/wake handshake. Returns false when the batcher stopped.
func (x *gbExecutor) park() bool {
	for i := 0; i < x.gb.spinPolls; i++ {
		if x.ring.nonEmpty() {
			return true
		}
		select {
		case <-x.gb.stopped:
			return false
		default:
		}
		runtime.Gosched()
	}
	for {
		x.ring.sleeping.Store(true)
		if x.ring.nonEmpty() {
			x.ring.sleeping.Store(false)
			return true
		}
		select {
		case <-x.ring.wake:
			x.ring.sleeping.Store(false)
			if x.ring.nonEmpty() {
				return true
			}
			// Stale token from an earlier publish already consumed by the
			// spin phase; re-arm and wait again.
		case <-x.gb.stopped:
			x.ring.sleeping.Store(false)
			return false
		}
	}
}

// gather collects a group behind first: up to MaxBatch units, holding
// the group open at most ~BatchWindow past the first unit. The wait is
// a yield-spin — one window is tens of microseconds, well under parking
// cost — cut short when the batcher stops.
func (x *gbExecutor) gather(first *gbUnit) {
	units := append(x.units[:0], first)
	max := x.gb.srv.cfg.MaxBatch
	deadline := telemetry.Nanotime() + x.gb.windowNanos
	idle := 0
	for len(units) < max {
		if u := x.ring.pop(); u != nil {
			units = append(units, u)
			idle = 0
			continue
		}
		// Read the clock every few empty polls, not every poll: a window is
		// tens of microseconds, so overshooting the deadline by a few
		// yields is harmless and the executor's idle loop stays off the
		// profile.
		idle++
		if idle&3 == 0 && telemetry.Nanotime() >= deadline {
			break
		}
		select {
		case <-x.gb.stopped:
			x.units = units
			return
		default:
		}
		runtime.Gosched()
	}
	x.units = units
}

// executeGroup executes the gathered units as consecutive same-verb
// stretches in arrival order — the cross-connection analogue of the
// per-connection coalescer, and the partition that preserves each
// connection's program order (see the ordering contract above).
func (x *gbExecutor) executeGroup() {
	units := x.units
	for i := 0; i < len(units); {
		v := units[i].verb
		j := i + 1
		for j < len(units) && units[j].verb == v {
			j++
		}
		x.executeStretch(v, units[i:j])
		i = j
	}
	// Completed units belong to their owners again; drop the pointers so
	// parked gather capacity cannot pin a connection or its values.
	clear(units)
	x.units = units[:0]
}

// executeStretch runs one same-verb stretch as a single sorted batch
// call (or a point call for a stretch of one), writes each unit's result
// and completes it back to its owner. After gbComplete on a unit the
// executor never touches it again.
func (x *gbExecutor) executeStretch(v Verb, us []*gbUnit) {
	srv := x.gb.srv
	obs := srv.obs
	n := len(us)
	var sampled, attrib bool
	var start int64
	if obs != nil {
		start = telemetry.Nanotime()
		for _, u := range us {
			obs.recordGroupWait(start - u.enq)
		}
		obs.recordGroupBatch(n)
		sampled = obs.sampleNext()
		attrib = sampled && srv.procStore != nil
		if attrib {
			x.procStats.Reset()
		}
	}
	traceKey := us[0].key

	if n == 1 {
		u := us[0]
		switch v {
		case VerbSet:
			if attrib {
				u.ok = srv.procStore.InsertProc(&x.proc, u.key, u.val)
			} else {
				u.ok = srv.store.Insert(u.key, u.val)
			}
		case VerbGet:
			if attrib {
				u.out, u.ok = srv.procStore.GetProc(&x.proc, u.key)
			} else {
				u.out, u.ok = srv.store.Get(u.key)
			}
		default: // VerbDel
			if attrib {
				u.ok = srv.procStore.DeleteProc(&x.proc, u.key)
			} else {
				u.ok = srv.store.Delete(u.key)
			}
		}
		u.owner.gbComplete()
	} else {
		ord := x.ord[:0]
		for i := 0; i < n; i++ {
			ord = append(ord, i)
		}
		slices.SortFunc(ord, func(a, b int) int {
			if d := cmp.Compare(us[a].key, us[b].key); d != 0 {
				return d
			}
			return cmp.Compare(a, b)
		})
		x.ord = ord
		flags := growTo(&x.flags, n)
		switch v {
		case VerbSet:
			items := x.items[:0]
			for _, oi := range ord {
				items = append(items, core.KV[int, string]{Key: us[oi].key, Value: us[oi].val})
			}
			x.items = items
			if attrib {
				srv.procStore.InsertBatchProc(&x.proc, items, flags)
			} else {
				srv.store.InsertBatch(items, flags)
			}
			for m, oi := range ord {
				u := us[oi]
				u.ok = flags[m]
				u.owner.gbComplete()
			}
		case VerbGet:
			keys := x.keys[:0]
			for _, oi := range ord {
				keys = append(keys, us[oi].key)
			}
			x.keys = keys
			vals := growTo(&x.vals, n)
			if attrib {
				srv.procStore.GetBatchProc(&x.proc, keys, vals, flags)
			} else {
				srv.store.GetBatch(keys, vals, flags)
			}
			for m, oi := range ord {
				u := us[oi]
				u.out = vals[m]
				u.ok = flags[m]
				u.owner.gbComplete()
			}
		default: // VerbDel
			keys := x.keys[:0]
			for _, oi := range ord {
				keys = append(keys, us[oi].key)
			}
			x.keys = keys
			if attrib {
				srv.procStore.DeleteBatchProc(&x.proc, keys, flags)
			} else {
				srv.store.DeleteBatch(keys, flags)
			}
			for m, oi := range ord {
				u := us[oi]
				u.ok = flags[m]
				u.owner.gbComplete()
			}
		}
		srv.addCounter(instrument.CtrUnitsGrouped, uint64(n))
	}

	if obs != nil {
		elapsed := telemetry.Nanotime() - start
		slow := elapsed >= obs.slowNanos
		if slow {
			srv.addCounter(instrument.CtrCmdsSlow, uint64(n))
		}
		if sampled || slow {
			var stats *core.OpStats
			if attrib {
				stats = &x.procStats
			}
			obs.trace(v, traceKey, n, elapsed, 0, sampled, slow, stats)
		}
	}
}

// gbComplete marks one of the connection's published units done; the
// final completion wakes a parked gbWait with a non-blocking token.
// Called by executors only.
func (c *conn) gbComplete() {
	if c.gbRemaining.Add(-1) == 0 {
		select {
		case c.gbWake <- struct{}{}:
		default:
		}
	}
}

// gbWait blocks until every unit the connection published for this run
// has completed: yield-spin, then park on the wake channel. A stale
// token (left when a prior wait was satisfied by the spin phase before
// its token landed) costs one spurious wake; the loop re-checks the
// count, and at most one token can ever be pending.
func (c *conn) gbWait() {
	for i := 0; i < c.srv.gb.spinPolls; i++ {
		if c.gbRemaining.Load() == 0 {
			return
		}
		runtime.Gosched()
	}
	for c.gbRemaining.Load() != 0 {
		<-c.gbWake
	}
}

// executeGrouped answers one run in group-batching mode: publish every
// batchable command as a unit (request order, so rings see each
// connection's program order), wait for all completions, then frame
// replies in request order — running the non-batchable verbs locally at
// their positions. Because the wait precedes the reply walk, a local
// LEN/RANGE observes every earlier write of its own run, and reply order
// on the wire is identical to per-connection mode.
func (c *conn) executeGrouped(r workRun) (quit bool) {
	obs := c.srv.obs
	if obs != nil {
		c.queueWait = telemetry.Nanotime() - r.enq
		obs.recordQueueWait(c.queueWait)
		c.pend = c.pend[:0]
	}
	e := r.entries
	nb := 0
	for i := range e {
		if e[i].err == nil && e[i].cmd.Verb.batchable() {
			nb++
		}
	}
	if nb > 0 {
		// Size the unit array before publishing anything: executors hold
		// pointers into it, so it must not move mid-run.
		units := growTo(&c.gbUnits, nb)
		c.gbRemaining.Store(int32(nb))
		var enq int64
		if obs != nil {
			enq = telemetry.Nanotime()
		}
		k := 0
		for i := range e {
			if e[i].err != nil || !e[i].cmd.Verb.batchable() {
				continue
			}
			u := &units[k]
			k++
			u.owner = c
			u.verb = e[i].cmd.Verb
			u.key = e[i].cmd.Key
			u.val = e[i].cmd.Value
			u.out = ""
			u.ok = false
			u.enq = enq
			c.srv.gb.ringFor(u.key).ring.push(u)
		}
		c.gbWait()
	}
	k := 0
	for i := 0; i < len(e); i++ {
		if e[i].err != nil {
			c.writeErr(e[i].err)
			continue
		}
		v := e[i].cmd.Verb
		if v.batchable() {
			u := &c.gbUnits[k]
			k++
			switch v {
			case VerbGet:
				c.writeValue(u.out, u.ok)
			case VerbSet:
				// Log before u.val is cleared below; the executor has
				// already applied the unit, so log order here is this
				// connection's reply (program) order.
				if u.ok && c.srv.wal != nil {
					c.logMutation(wal.OpSet, u.key, u.val)
				}
				c.writeSetReply(u.ok)
			default:
				if u.ok && c.srv.wal != nil {
					c.logMutation(wal.OpDel, u.key, "")
				}
				c.writeBool(u.ok)
			}
			// Don't pin store values or arena chunks past the run.
			u.out = ""
			u.val = ""
			continue
		}
		if c.executeSingle(e[i].cmd) {
			return true
		}
	}
	return false
}
