package server

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/telemetry"
	"repro/lockfree"
)

// respCmd renders one RESP2 multibulk frame.
func respCmd(args ...string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "*%d\r\n", len(args))
	for _, a := range args {
		fmt.Fprintf(&b, "$%d\r\n%s\r\n", len(a), a)
	}
	return b.String()
}

// mustReadCRLF reads one reply line and strips its CRLF terminator.
func mustReadCRLF(t *testing.T, br interface{ ReadString(byte) (string, error) }) string {
	t.Helper()
	line, err := br.ReadString('\n')
	if err != nil {
		t.Fatalf("reading RESP reply: %v", err)
	}
	return strings.TrimSuffix(line, "\r\n")
}

// TestRespPointCommands drives the whole RESP command set over TCP —
// auto-detection from the first '*', Redis reply shapes, DBSIZE and LEN
// as aliases, and QUIT closing the connection.
func TestRespPointCommands(t *testing.T) {
	rec := telemetry.NewRecorder(1)
	srv := startTCP(t, Config{}, lockfree.NewSkipList[int, string](), rec)
	nc, br := dial(t, srv)

	send := func(s string) {
		t.Helper()
		if _, err := nc.Write([]byte(s)); err != nil {
			t.Fatal(err)
		}
	}
	expect := func(want string) {
		t.Helper()
		if got := mustReadCRLF(t, br); got != want {
			t.Fatalf("got %q, want %q", got, want)
		}
	}

	send(respCmd("PING"))
	expect("+PONG")
	send(respCmd("SET", "10", "alpha"))
	expect("+OK")
	send(respCmd("SET", "10", "beta")) // duplicate: still +OK in RESP (insert-if-absent)
	expect("+OK")
	send(respCmd("GET", "10"))
	expect("$5")
	expect("alpha")
	send(respCmd("GET", "11"))
	expect("$-1")
	send(respCmd("DBSIZE"))
	expect(":1")
	send(respCmd("LEN"))
	expect(":1")
	send(respCmd("SET", "20", "twenty"))
	expect("+OK")
	send(respCmd("RANGE", "0", "100"))
	expect("*4")
	expect("$2")
	expect("10")
	expect("$5")
	expect("alpha")
	expect("$2")
	expect("20")
	expect("$6")
	expect("twenty")
	send(respCmd("DEL", "10"))
	expect(":1")
	send(respCmd("DEL", "10"))
	expect(":0")

	if got := rec.Snapshot().Counters.ConnResp; got != 1 {
		t.Fatalf("conn_resp = %d, want 1", got)
	}

	send(respCmd("QUIT"))
	expect("+OK")
	if _, err := br.ReadString('\n'); err == nil {
		t.Fatal("connection still open after QUIT")
	}
}

// TestRespInlineAfterDetect: the dialect choice is sticky, and a RESP
// connection still accepts Redis inline commands (bare lines), which is
// how redis-benchmark's ping_inline mode talks.
func TestRespInlineAfterDetect(t *testing.T) {
	srv := startTCP(t, Config{}, lockfree.NewSkipList[int, string](), nil)
	nc, br := dial(t, srv)

	if _, err := nc.Write([]byte(respCmd("PING") + "PING\r\nGET 7\r\n")); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"+PONG", "+PONG", "$-1"} {
		if got := mustReadCRLF(t, br); got != want {
			t.Fatalf("got %q, want %q", got, want)
		}
	}
}

// TestRespCoalescing is the coalescer contract through the RESP codec: a
// pipelined run of same-verb frames written in one piece still becomes
// exactly one sorted batch call, with replies in request order.
func TestRespCoalescing(t *testing.T) {
	const n = 16
	cs := &countingStore{Store: lockfree.NewSkipList[int, string]()}
	srv := New(Config{MaxBatch: 64}, cs)
	cl, br := pipeConn(t, srv)

	var req strings.Builder
	for i := 0; i < n; i++ { // descending keys: proves the inverse permutation
		req.WriteString(respCmd("SET", fmt.Sprint(n-i), fmt.Sprintf("v%d", n-i)))
	}
	if _, err := cl.Write([]byte(req.String())); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if got := mustReadCRLF(t, br); got != "+OK" {
			t.Fatalf("SET reply %d = %q, want +OK", i, got)
		}
	}
	if got := cs.insertBatch.Load(); got != 1 {
		t.Fatalf("InsertBatch calls = %d, want exactly 1", got)
	}
	if got := cs.insert.Load(); got != 0 {
		t.Fatalf("point Insert calls = %d, want 0", got)
	}

	req.Reset()
	for i := n; i >= 1; i-- {
		req.WriteString(respCmd("GET", fmt.Sprint(i)))
	}
	if _, err := cl.Write([]byte(req.String())); err != nil {
		t.Fatal(err)
	}
	for i := n; i >= 1; i-- {
		want := fmt.Sprintf("v%d", i)
		if got := mustReadCRLF(t, br); got != fmt.Sprintf("$%d", len(want)) {
			t.Fatalf("GET %d header = %q", i, got)
		}
		if got := mustReadCRLF(t, br); got != want {
			t.Fatalf("GET %d = %q, want %q", i, got, want)
		}
	}
	if got := cs.getBatch.Load(); got != 1 {
		t.Fatalf("GetBatch calls = %d, want exactly 1", got)
	}
}

// TestRespMalformedFrames: every malformed frame fails its own request
// with -ERR and leaves the connection serving — proven by a sentinel PING
// answered after each. Mirrors the line protocol's overlong-line test.
func TestRespMalformedFrames(t *testing.T) {
	sentinel := respCmd("PING")
	cases := []struct {
		name  string
		frame string
		errs  int // -ERR replies expected before the sentinel's +PONG
	}{
		{"bad array length", "*x\r\n", 1},
		{"zero array length", "*0\r\n", 1},
		{"huge array length", "*1000000\r\n", 1},
		{"missing bulk header", "*1\r\nPING\r\n", 1},
		{"bad bulk length", "*2\r\n$3\r\nGET\r\n$99999999999999999999\r\n", 1},
		{"negative bulk length", "*2\r\n$3\r\nGET\r\n$-4\r\n", 1},
		{"overlong bulk", "*3\r\n$3\r\nSET\r\n$1\r\n1\r\n$200\r\n" + strings.Repeat("x", 200) + "\r\n", 1},
		{"bulk trailer violation", "*1\r\n$4\r\nPINGab", 1},
		{"unknown command", respCmd("CONFIG", "GET", "save"), 1},
		{"wrong arity", respCmd("GET", "1", "2"), 1},
		{"non-integer key", respCmd("GET", "abc"), 1},
		// Digitless keys mid-frame: the value / hi bulks after the bad key
		// must be discarded, or they would be re-parsed as the next command
		// and the sentinel PING would misalign.
		{"digitless SET key", respCmd("SET", "foo", "bar"), 1},
		{"digitless RANGE lo", respCmd("RANGE", "foo", "9"), 1},
		{"digitless RANGE hi", respCmd("RANGE", "1", "foo"), 1},
		// A 23-digit trailing run overflows int64 and is rejected, never
		// silently truncated to a colliding shorter key.
		{"overflowing key digits", respCmd("GET", "key:12345678901234567890123"), 1},
		{"range arity", respCmd("RANGE", "1"), 1},
		// SET options the server cannot honor are refused per request —
		// the trailing option bulks must be discarded, not re-parsed as
		// the next command.
		{"SET with EX option", respCmd("SET", "1", "v", "EX", "60"), 1},
		{"SET with NX option", respCmd("SET", "1", "v", "NX"), 1},
		{"SET with XX GET options", respCmd("SET", "1", "v", "XX", "GET"), 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			srv := New(Config{MaxLineBytes: 128}, lockfree.NewSkipList[int, string]())
			cl, br := pipeConn(t, srv)
			// First frame is well-formed so the dialect latches to RESP
			// before the hostile bytes arrive.
			if _, err := cl.Write([]byte(sentinel + tc.frame + sentinel)); err != nil {
				t.Fatal(err)
			}
			if got := mustReadCRLF(t, br); got != "+PONG" {
				t.Fatalf("prologue = %q, want +PONG", got)
			}
			for i := 0; i < tc.errs; i++ {
				got := mustReadCRLF(t, br)
				if !strings.HasPrefix(got, "-ERR ") {
					t.Fatalf("reply %d = %q, want -ERR prefix", i, got)
				}
			}
			if got := mustReadCRLF(t, br); got != "+PONG" {
				t.Fatalf("sentinel after %s = %q, want +PONG (connection must survive)", tc.name, got)
			}
		})
	}
}

// TestRespBenchmarkTraffic simulates the exact frame shapes redis-cli and
// redis-benchmark emit: "key:000000000042"-style keys map to the integer
// spelled by their trailing digit run, SET with trailing options is
// refused honestly (the server has no expiry to honor), and probe
// commands fail politely without desyncing the stream.
func TestRespBenchmarkTraffic(t *testing.T) {
	srv := startTCP(t, Config{}, lockfree.NewSkipList[int, string](), nil)
	nc, br := dial(t, srv)

	expect := func(want string) {
		t.Helper()
		if got := mustReadCRLF(t, br); got != want {
			t.Fatalf("got %q, want %q", got, want)
		}
	}

	// redis-cli opens with COMMAND DOCS; redis-benchmark probes CONFIG GET.
	if _, err := nc.Write([]byte(respCmd("COMMAND", "DOCS"))); err != nil {
		t.Fatal(err)
	}
	if got := mustReadCRLF(t, br); !strings.HasPrefix(got, "-ERR unknown command") {
		t.Fatalf("COMMAND DOCS = %q, want -ERR unknown command", got)
	}
	nc.Write([]byte(respCmd("CONFIG", "GET", "save")))
	if got := mustReadCRLF(t, br); !strings.HasPrefix(got, "-ERR unknown command") {
		t.Fatalf("CONFIG GET = %q, want -ERR unknown command", got)
	}

	// SET with an option the server cannot honor must refuse, not ack
	// and silently drop the expiry — and must not store the value.
	nc.Write([]byte(respCmd("SET", "key:000000000042", "VXK", "EX", "60")))
	expect("-ERR unsupported option")
	nc.Write([]byte(respCmd("GET", "key:000000000042")))
	expect("$-1")

	nc.Write([]byte(respCmd("SET", "key:000000000042", "VXK")))
	expect("+OK")
	nc.Write([]byte(respCmd("GET", "key:000000000042")))
	expect("$3")
	expect("VXK")
	nc.Write([]byte(respCmd("GET", "42"))) // trailing-run mapping hits the same key
	expect("$3")
	expect("VXK")
	nc.Write([]byte(respCmd("DEL", "key:000000000042")))
	expect(":1")

	// The line protocol keeps its strict grammar: the mapping is RESP-only.
	nc2, br2 := dial(t, srv)
	if _, err := nc2.Write([]byte("GET key:000000000042\n")); err != nil {
		t.Fatal(err)
	}
	if got := mustReadLine(t, br2); !strings.HasPrefix(got, "-ERR key") {
		t.Fatalf("line-protocol compat key = %q, want -ERR key ...", got)
	}
}

// TestRespBigValues pushes values across the writev splice threshold so
// GET and RANGE replies mix copied framing with referenced value iovecs,
// over real TCP where net.Buffers actually vectorizes.
func TestRespBigValues(t *testing.T) {
	srv := startTCP(t, Config{}, lockfree.NewSkipList[int, string](), nil)
	nc, br := dial(t, srv)

	big1 := strings.Repeat("a", 4*bigValueBytes)
	big2 := strings.Repeat("b", bigValueBytes)
	small := "tiny"

	expect := func(want string) {
		t.Helper()
		if got := mustReadCRLF(t, br); got != want {
			if len(got) > 64 {
				got = got[:64] + "..."
			}
			t.Fatalf("got %q, want %q-ish", got, want[:min(len(want), 64)])
		}
	}

	nc.Write([]byte(respCmd("SET", "1", big1)))
	expect("+OK")
	nc.Write([]byte(respCmd("SET", "2", small)))
	expect("+OK")
	nc.Write([]byte(respCmd("SET", "3", big2)))
	expect("+OK")

	nc.Write([]byte(respCmd("GET", "1")))
	expect(fmt.Sprintf("$%d", len(big1)))
	expect(big1)

	nc.Write([]byte(respCmd("RANGE", "0", "10")))
	expect("*6")
	expect("$1")
	expect("1")
	expect(fmt.Sprintf("$%d", len(big1)))
	expect(big1)
	expect("$1")
	expect("2")
	expect("$4")
	expect(small)
	expect("$1")
	expect("3")
	expect(fmt.Sprintf("$%d", len(big2)))
	expect(big2)
}
