package noflag

import (
	"math/rand/v2"
	"sort"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/instrument"
)

func TestNoflagSequential(t *testing.T) {
	l := NewList[int, int]()
	for i := 0; i < 300; i++ {
		if _, ok := l.Insert(nil, i, i); !ok {
			t.Fatalf("Insert(%d) failed", i)
		}
	}
	if _, ok := l.Insert(nil, 7, 0); ok {
		t.Fatal("duplicate insert succeeded")
	}
	for i := 0; i < 300; i += 2 {
		if _, ok := l.Delete(nil, i); !ok {
			t.Fatalf("Delete(%d) failed", i)
		}
	}
	if got := l.Len(); got != 150 {
		t.Fatalf("Len = %d", got)
	}
	var got []int
	l.Ascend(func(k, _ int) bool { got = append(got, k); return true })
	if len(got) != 150 || !sort.IntsAreSorted(got) {
		t.Fatalf("traversal: %d sorted=%t", len(got), sort.IntsAreSorted(got))
	}
	for i := 0; i < 300; i++ {
		_, ok := l.Get(nil, i)
		if want := i%2 == 1; ok != want {
			t.Fatalf("Get(%d)=%t want %t", i, ok, want)
		}
	}
}

func TestNoflagConcurrentStress(t *testing.T) {
	l := NewList[int, int]()
	const workers, ops, keyRange = 8, 2500, 64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(uint64(w), 13))
			p := &instrument.Proc{ID: w}
			for i := 0; i < ops; i++ {
				k := int(rng.Uint64N(keyRange))
				switch rng.Uint64N(3) {
				case 0:
					l.Insert(p, k, k)
				case 1:
					l.Delete(p, k)
				default:
					l.Search(p, k)
				}
			}
		}(w)
	}
	wg.Wait()
	seen := map[int]bool{}
	count := 0
	l.Ascend(func(k, _ int) bool {
		if seen[k] {
			t.Errorf("duplicate key %d", k)
		}
		seen[k] = true
		count++
		return true
	})
	if got := l.Len(); got != count {
		t.Fatalf("Len = %d, traversal = %d", got, count)
	}
}

func TestNoflagAccounting(t *testing.T) {
	for round := 0; round < 10; round++ {
		l := NewList[int, int]()
		const workers, ops, keyRange = 8, 1500, 48
		var insWins, delWins atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				rng := rand.New(rand.NewPCG(uint64(w), uint64(round)+100))
				for i := 0; i < ops; i++ {
					k := int(rng.Uint64N(keyRange))
					if rng.Uint64N(2) == 0 {
						if _, ok := l.Insert(nil, k, k); ok {
							insWins.Add(1)
						}
					} else {
						if _, ok := l.Delete(nil, k); ok {
							delWins.Add(1)
						}
					}
				}
			}(w)
		}
		wg.Wait()
		count := 0
		l.Ascend(func(_, _ int) bool { count++; return true })
		net := int(insWins.Load() - delWins.Load())
		if net != count || l.Len() != count {
			t.Fatalf("round %d: Len=%d traversal=%d net=%d", round, l.Len(), count, net)
		}
	}
}

func TestNoflagDeleteContention(t *testing.T) {
	const workers, keys = 8, 120
	for round := 0; round < 5; round++ {
		l := NewList[int, int]()
		for k := 0; k < keys; k++ {
			l.Insert(nil, k, k)
		}
		var wins [workers]int
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				p := &instrument.Proc{ID: w}
				for k := 0; k < keys; k++ {
					if _, ok := l.Delete(p, k); ok {
						wins[w]++
					}
				}
			}(w)
		}
		wg.Wait()
		total := 0
		for _, n := range wins {
			total += n
		}
		if total != keys {
			t.Fatalf("round %d: %d wins for %d keys", round, total, keys)
		}
		if got := l.Len(); got != 0 {
			t.Fatalf("round %d: Len = %d", round, got)
		}
	}
}

func TestNoflagBacklinksRecorded(t *testing.T) {
	l := NewList[int, int]()
	for i := 0; i < 10; i++ {
		l.Insert(nil, i, i)
	}
	n := l.Search(nil, 5)
	if n == nil {
		t.Fatal("missing node")
	}
	l.Delete(nil, 5)
	if n.backlink.Load() == nil {
		t.Fatal("deleted node has no backlink")
	}
	if got := l.RecoverChainLen(n); got != 1 {
		t.Fatalf("recover chain length = %d, want 1", got)
	}
}
