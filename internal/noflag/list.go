// Package noflag implements the ablation variant of the paper's linked
// list used by experiment E7: backlinks for recovery, but no flag bits.
//
// Deletion is two-step, as in Harris: set the victim's backlink (to the
// best predecessor known, which may itself already be marked), mark the
// victim, then physically unlink it. Because the predecessor is not
// frozen by a flag before the backlink is set, the backlink can point to
// a marked node - precisely the situation Section 3.1 identifies as
// letting chains of backlinks grow towards the right, so that the same
// process may traverse long chains many times. Comparing recovery-chain
// lengths between this package and internal/core quantifies what the flag
// bit buys.
package noflag

import (
	"cmp"
	"sync/atomic"

	"repro/internal/instrument"
)

type nodeKind int8

const (
	kindInterior nodeKind = iota
	kindHead
	kindTail
)

// succ is the composite successor field: (right, mark). No flag bit.
type succ[K cmp.Ordered, V any] struct {
	right  *Node[K, V]
	marked bool
}

// Node is one cell of the no-flag list.
type Node[K cmp.Ordered, V any] struct {
	key      K
	val      V
	kind     nodeKind
	succ     atomic.Pointer[succ[K, V]]
	backlink atomic.Pointer[Node[K, V]]
}

// Key returns the node's key.
func (n *Node[K, V]) Key() K { return n.key }

// Value returns the node's value.
func (n *Node[K, V]) Value() V { return n.val }

func (n *Node[K, V]) loadSucc() *succ[K, V] { return n.succ.Load() }

func (n *Node[K, V]) marked() bool {
	s := n.succ.Load()
	return s != nil && s.marked
}

func (n *Node[K, V]) right() *Node[K, V] { return n.succ.Load().right }

func (n *Node[K, V]) compareKey(k K) int {
	switch n.kind {
	case kindHead:
		return -1
	case kindTail:
		return 1
	default:
		return cmp.Compare(n.key, k)
	}
}

func (n *Node[K, V]) keyLeq(k K, strict bool) bool {
	c := n.compareKey(k)
	if strict {
		return c < 0
	}
	return c <= 0
}

// List is the flag-free ablation of the Fomitchev-Ruppert list.
type List[K cmp.Ordered, V any] struct {
	head *Node[K, V]
	tail *Node[K, V]
	size atomic.Int64
}

// NewList returns an empty list.
func NewList[K cmp.Ordered, V any]() *List[K, V] {
	l := &List[K, V]{
		head: &Node[K, V]{kind: kindHead},
		tail: &Node[K, V]{kind: kindTail},
	}
	l.head.succ.Store(&succ[K, V]{right: l.tail})
	l.tail.succ.Store(&succ[K, V]{right: nil})
	return l
}

// Len returns the number of keys (exact when quiescent).
func (l *List[K, V]) Len() int { return int(l.size.Load()) }

// recover walks backlinks from n to the first unmarked node, counting each
// traversal. Chains here may pass through nodes that were marked after the
// backlink was set - the pathology E7 measures. It returns the unmarked
// node and the number of links walked.
func (l *List[K, V]) recover(p *instrument.Proc, n *Node[K, V]) (*Node[K, V], int) {
	st := p.StatsOrNil()
	walked := 0
	for n.marked() {
		st.IncBacklink()
		p.At(instrument.PtBacklinkStep)
		b := n.backlink.Load()
		if b == nil {
			// The node was marked before its deleter stored the
			// backlink; fall back to the head (bounded by the race
			// window, counted as a restart).
			st.IncRestart()
			return l.head, walked
		}
		n = b
		walked++
	}
	return n, walked
}

// searchFrom finds (n1, n2) with n1.key <= k < n2.key (strict: < / <=),
// physically unlinking marked nodes it passes.
func (l *List[K, V]) searchFrom(p *instrument.Proc, k K, curr *Node[K, V], strict bool) (*Node[K, V], *Node[K, V]) {
	st := p.StatsOrNil()
	next := curr.right()
	for next.keyLeq(k, strict) {
		for {
			nextSucc := next.loadSucc()
			if !nextSucc.marked {
				break
			}
			currSucc := curr.loadSucc()
			if currSucc.marked {
				// curr was marked under us: recover through backlinks.
				curr, _ = l.recover(p, curr)
				next = curr.right()
				st.IncNext()
				continue
			}
			if currSucc.right == next {
				// Physically unlink the marked next node.
				p.At(instrument.PtBeforePhysicalCAS)
				ok := curr.succ.CompareAndSwap(currSucc, &succ[K, V]{right: nextSucc.right})
				st.IncCAS(ok)
			}
			next = curr.right()
			st.IncNext()
		}
		if next.keyLeq(k, strict) {
			curr = next
			st.IncCurr()
			next = curr.right()
			st.IncNext()
		}
	}
	p.At(instrument.PtSearchDone)
	return curr, next
}

// Search looks up k and returns its node, or nil.
func (l *List[K, V]) Search(p *instrument.Proc, k K) *Node[K, V] {
	curr, _ := l.searchFrom(p, k, l.head, false)
	if curr.compareKey(k) == 0 && !curr.marked() {
		return curr
	}
	return nil
}

// Get looks up k and returns its value.
func (l *List[K, V]) Get(p *instrument.Proc, k K) (V, bool) {
	if n := l.Search(p, k); n != nil {
		return n.val, true
	}
	var zero V
	return zero, false
}

// Insert adds k with value v; recovery after a failed C&S walks backlinks
// (never restarts from the head), exactly as in internal/core but without
// the flag-help path.
func (l *List[K, V]) Insert(p *instrument.Proc, k K, v V) (*Node[K, V], bool) {
	st := p.StatsOrNil()
	prev, next := l.searchFrom(p, k, l.head, false)
	if prev.compareKey(k) == 0 {
		return prev, false
	}
	newNode := &Node[K, V]{key: k, val: v}
	for {
		prevSucc := prev.loadSucc()
		if !prevSucc.marked && prevSucc.right == next {
			newNode.succ.Store(&succ[K, V]{right: next})
			p.At(instrument.PtBeforeInsertCAS)
			ok := prev.succ.CompareAndSwap(prevSucc, &succ[K, V]{right: newNode})
			st.IncCAS(ok)
			if ok {
				l.size.Add(1)
				return newNode, true
			}
			p.At(instrument.PtAfterInsertCASFail)
		} else {
			st.IncCAS(false)
		}
		if prev.marked() {
			prev, _ = l.recover(p, prev)
		}
		prev, next = l.searchFrom(p, k, prev, false)
		if prev.compareKey(k) == 0 {
			return prev, false
		}
	}
}

// Delete removes k using two-step deletion with backlinks: store the
// backlink (possibly to an already-marked node), mark, then unlink.
func (l *List[K, V]) Delete(p *instrument.Proc, k K) (*Node[K, V], bool) {
	st := p.StatsOrNil()
	prev, delNode := l.searchFrom(p, k, l.head, true)
	for {
		if delNode.compareKey(k) != 0 {
			return nil, false
		}
		s := delNode.loadSucc()
		if s.marked {
			return nil, false // a concurrent deletion won
		}
		// Store the backlink before marking, so every marked node has
		// one; prev may already be marked - that is the ablation.
		delNode.backlink.Store(prev)
		p.At(instrument.PtBeforeMarkCAS)
		ok := delNode.succ.CompareAndSwap(s, &succ[K, V]{right: s.right, marked: true})
		st.IncCAS(ok)
		if ok {
			l.size.Add(-1)
			break
		}
		// Marking failed: the successor changed or another deleter is in
		// progress; refresh and retry.
		if prev.marked() {
			prev, _ = l.recover(p, prev)
		}
		prev, delNode = l.searchFrom(p, k, prev, true)
	}
	// Physical deletion: one direct attempt, else let searches prune.
	prevSucc := prev.loadSucc()
	if prevSucc.right == delNode && !prevSucc.marked {
		p.At(instrument.PtBeforePhysicalCAS)
		ok := prev.succ.CompareAndSwap(prevSucc, &succ[K, V]{right: delNode.right()})
		st.IncCAS(ok)
		if !ok {
			l.searchFrom(p, k, l.head, true)
		}
	} else {
		l.searchFrom(p, k, l.head, true)
	}
	return delNode, true
}

// Ascend iterates keys in ascending order, skipping marked nodes.
func (l *List[K, V]) Ascend(fn func(k K, v V) bool) {
	n := l.head.right()
	for n.kind != kindTail {
		if !n.marked() {
			if !fn(n.key, n.val) {
				return
			}
		}
		n = n.right()
	}
}

// RecoverChainLen exposes recovery-walk lengths for E7: it walks backlinks
// from n as an operation would and returns the chain length.
func (l *List[K, V]) RecoverChainLen(n *Node[K, V]) int {
	_, walked := l.recover(nil, n)
	return walked
}
