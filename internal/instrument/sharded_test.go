package instrument

import (
	"sync"
	"testing"
)

// TestShardedInt64Quiescent checks that the striped counter is exact once
// all writers have joined, under concurrent mixed-sign adds.
func TestShardedInt64Quiescent(t *testing.T) {
	var c ShardedInt64
	c.Init()
	if c.Shards() == 0 {
		t.Fatal("Init left zero shards")
	}
	const workers = 8
	const perWorker = 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Add(1)
				if i%2 == 0 {
					c.Add(-1)
				}
			}
		}(w)
	}
	wg.Wait()
	want := int64(workers * perWorker / 2)
	if got := c.Load(); got != want {
		t.Fatalf("Load = %d, want %d", got, want)
	}
}

// TestShardedInt64AddDoesNotAllocate pins the zero-allocation contract of
// the hot path: Len maintenance must not reintroduce per-op allocations.
func TestShardedInt64AddDoesNotAllocate(t *testing.T) {
	var c ShardedInt64
	c.Init()
	if allocs := testing.AllocsPerRun(1000, func() { c.Add(1) }); allocs != 0 {
		t.Fatalf("Add allocates %v objects per call, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(1000, func() { _ = c.Load() }); allocs != 0 {
		t.Fatalf("Load allocates %v objects per call, want 0", allocs)
	}
}

// TestShardedInt64LoadNeverDoubleCounts samples the counter while a known
// monotone workload runs: every observation must lie between 0 and the
// final total (a torn or double-counted read could exceed it).
func TestShardedInt64LoadNeverDoubleCounts(t *testing.T) {
	var c ShardedInt64
	c.Init()
	const workers = 4
	const perWorker = 20000
	const total = workers * perWorker
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Add(1)
			}
		}()
	}
	var sampler sync.WaitGroup
	sampler.Add(1)
	go func() {
		defer sampler.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if n := c.Load(); n < 0 || n > total {
				t.Errorf("Load = %d outside [0, %d]", n, total)
				return
			}
		}
	}()
	wg.Wait()
	close(stop)
	sampler.Wait()
	if got := c.Load(); got != total {
		t.Fatalf("final Load = %d, want %d", got, total)
	}
}
