package instrument

import (
	"runtime"
	"sync/atomic"
	"unsafe"
)

// cacheLine is the assumed cache-line size; 64 bytes is correct for every
// amd64/arm64 part this code will plausibly run on. Being wrong only costs
// a little false sharing, never correctness.
const cacheLine = 64

// counterShard is one stripe of a ShardedInt64, padded so two shards never
// share a cache line.
type counterShard struct {
	v atomic.Int64
	_ [cacheLine - 8]byte
}

// ShardedInt64 is a striped int64 counter for write-hot paths shared by
// many goroutines (the lists' Len maintenance): Add touches a single
// goroutine-affine shard instead of serializing every writer on one cache
// line, and Load sums the shards.
//
// Semantics: Add is atomic within its shard, so the counter is exact in
// any quiescent state. A concurrent Load may miss deltas still in flight,
// but never by more than the number of in-flight Adds, and never counts a
// delta twice - each Add lands in exactly one shard and Load reads each
// shard exactly once.
//
// The zero value is not usable; call Init before sharing the counter.
type ShardedInt64 struct {
	shards []counterShard
	mask   uint32
}

// Init sizes the counter to twice GOMAXPROCS shards (rounded up to a
// power of two, capped at 256 - the same policy as the telemetry
// recorder's stripes) and must be called before the counter is shared.
func (c *ShardedInt64) Init() {
	want := runtime.GOMAXPROCS(0) * 2
	n := 1
	for n < want && n < 256 {
		n <<= 1
	}
	c.shards = make([]counterShard, n)
	c.mask = uint32(n - 1)
}

// Add atomically adds delta to the calling goroutine's shard. It never
// allocates.
func (c *ShardedInt64) Add(delta int64) {
	c.shards[shardIndex()&c.mask].v.Add(delta)
}

// Load returns the sum of all shards; see the type comment for its
// consistency guarantees.
func (c *ShardedInt64) Load() int64 {
	var sum int64
	for i := range c.shards {
		sum += c.shards[i].v.Load()
	}
	return sum
}

// Shards returns the shard count (for tests and diagnostics).
func (c *ShardedInt64) Shards() int { return len(c.shards) }

// shardIndex returns a goroutine-affine hash used to pick a shard, the
// same trick as internal/telemetry/shard.go: Go offers no cheap public
// goroutine ID, so hash the address of a stack variable - distinct
// goroutines occupy distinct stacks, giving a stable-enough spread for a
// couple of arithmetic ops. A collision is harmless (two goroutines merely
// share a stripe). The address is only hashed, never dereferenced or
// retained, so this use of unsafe cannot outlive the frame.
func shardIndex() uint32 {
	var marker byte
	p := uintptr(unsafe.Pointer(&marker))
	// Fibonacci hashing; stack addresses share low bits (alignment) and
	// high bits (arena), the middle bits carry the per-goroutine entropy.
	return uint32((p * 0x9E3779B97F4A7C15) >> 33)
}
