package instrument

import "sync/atomic"

// TraceRing is a fixed-size lock-free ring buffer of operation trace
// records: the serving layer writes one record for every sampled (every
// Nth) operation and for every operation over its slow threshold, and the
// admin surface reads the newest records back as JSON. Writers never
// block and never allocate: a slot is claimed with one atomic add and
// filled with plain atomic stores; the ring overwrites its oldest records
// when full (a trace is a diagnostic sample, not an audit log).
//
// Torn reads are handled with a per-slot sequence pair: the writer bumps
// seq0 before filling the slot and seq1 after, both to the claim ticket,
// so a reader keeps a record only when seq0 == seq1 (the slot was not
// mid-overwrite while it copied). Every field is read and written through
// atomics, so concurrent trace writes and /debug/trace reads are
// race-detector clean.
type TraceRing struct {
	cursor atomic.Uint64
	slots  []traceSlot
	mask   uint64
}

// traceSlot is one ring cell; fields mirror TraceRecord.
type traceSlot struct {
	seq0, seq1 atomic.Uint64

	at         atomic.Int64
	verb       atomic.Uint32
	flags      atomic.Uint32
	key        atomic.Int64
	batch      atomic.Int64
	wallNanos  atomic.Int64
	queueNanos atomic.Int64
	stats      [6]atomic.Uint64 // cas attempts/successes, backoffs, finger hit/miss, essential steps
}

// TraceRecord is one sampled operation trace. Wall latency is the
// operation's store-execution time; QueueNanos is how long the parsed
// run waited between the reader's hand-off and the writer picking it up.
// The step counters are exact for sampled records (the operation ran with
// a private stats sink attached) and zero for records captured only
// because they crossed the slow threshold.
type TraceRecord struct {
	// At is the Nanotime the record was written (process-local epoch;
	// only differences are meaningful — exporters render age instead).
	At int64
	// Verb is the operation's wire verb, encoded by the serving layer.
	Verb uint32
	// Sampled records ran with step attribution attached; Slow records
	// crossed the slow threshold (a record can be both).
	Sampled, Slow bool
	// Key is the operation's key locality hint: the first key of the
	// unit, low bits masked so a trace identifies a key neighbourhood,
	// not an exact key.
	Key int64
	// Batch is the number of commands the unit carried (1 for a point
	// command, the stretch length for a coalesced batch).
	Batch int64
	// WallNanos is the unit's store-execution wall time.
	WallNanos int64
	// QueueNanos is the reader-to-writer queue wait of the unit's run.
	QueueNanos int64
	// Per-unit step attribution (exact when Sampled).
	CASAttempts, CASSuccesses uint64
	BackoffWaits              uint64
	FingerHits, FingerMisses  uint64
	EssentialSteps            uint64
}

const (
	traceFlagSampled = 1 << iota
	traceFlagSlow
)

// NewTraceRing returns a ring holding capacity records, rounded up to a
// power of two (minimum 8).
func NewTraceRing(capacity int) *TraceRing {
	n := 8
	for n < capacity {
		n <<= 1
	}
	return &TraceRing{slots: make([]traceSlot, n), mask: uint64(n - 1)}
}

// Cap returns the ring capacity.
func (r *TraceRing) Cap() int { return len(r.slots) }

// Written returns the total number of records ever written (the ring
// retains the last Cap of them).
func (r *TraceRing) Written() uint64 { return r.cursor.Load() }

// Add writes one record, overwriting the oldest when the ring is full.
// It never blocks and never allocates.
func (r *TraceRing) Add(rec *TraceRecord) {
	ticket := r.cursor.Add(1)
	s := &r.slots[(ticket-1)&r.mask]
	s.seq0.Store(ticket)
	s.at.Store(rec.At)
	s.verb.Store(rec.Verb)
	var flags uint32
	if rec.Sampled {
		flags |= traceFlagSampled
	}
	if rec.Slow {
		flags |= traceFlagSlow
	}
	s.flags.Store(flags)
	s.key.Store(rec.Key)
	s.batch.Store(rec.Batch)
	s.wallNanos.Store(rec.WallNanos)
	s.queueNanos.Store(rec.QueueNanos)
	s.stats[0].Store(rec.CASAttempts)
	s.stats[1].Store(rec.CASSuccesses)
	s.stats[2].Store(rec.BackoffWaits)
	s.stats[3].Store(rec.FingerHits)
	s.stats[4].Store(rec.FingerMisses)
	s.stats[5].Store(rec.EssentialSteps)
	s.seq1.Store(ticket)
}

// Snapshot returns up to max of the newest records, newest first. Records
// overwritten while the snapshot runs are skipped (their sequence pair no
// longer matches the ticket the reader expected), so the result is always
// a set of internally consistent records.
func (r *TraceRing) Snapshot(max int) []TraceRecord {
	cur := r.cursor.Load()
	n := uint64(len(r.slots))
	if cur < n {
		n = cur
	}
	if max > 0 && uint64(max) < n {
		n = uint64(max)
	}
	out := make([]TraceRecord, 0, n)
	for i := uint64(0); i < n; i++ {
		ticket := cur - i
		s := &r.slots[(ticket-1)&r.mask]
		if s.seq1.Load() != ticket {
			continue // already overwritten (or mid-write) by a newer record
		}
		rec := TraceRecord{
			At:             s.at.Load(),
			Verb:           s.verb.Load(),
			Key:            s.key.Load(),
			Batch:          s.batch.Load(),
			WallNanos:      s.wallNanos.Load(),
			QueueNanos:     s.queueNanos.Load(),
			CASAttempts:    s.stats[0].Load(),
			CASSuccesses:   s.stats[1].Load(),
			BackoffWaits:   s.stats[2].Load(),
			FingerHits:     s.stats[3].Load(),
			FingerMisses:   s.stats[4].Load(),
			EssentialSteps: s.stats[5].Load(),
		}
		flags := s.flags.Load()
		rec.Sampled = flags&traceFlagSampled != 0
		rec.Slow = flags&traceFlagSlow != 0
		if s.seq0.Load() != ticket {
			continue // torn: a writer claimed this slot while we copied
		}
		out = append(out, rec)
	}
	return out
}
