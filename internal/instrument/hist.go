package instrument

import (
	"math/bits"
	"sync/atomic"
)

// Hist is a lock-free log-bucketed (HDR-style) histogram of non-negative
// int64 values. It is the latency primitive of the serving layer's
// request observability: recording is one bucket computation (a handful
// of bit operations) plus three striped-free atomic adds — no allocation,
// no lock, no clock read — so it can sit on the per-command hot path.
//
// Bucket layout: values 0..15 get exact buckets; above that, each power
// of two is split into four sub-buckets (two mantissa bits), bounding the
// relative quantization error at ~12.5% — the HDR-histogram trade-off —
// up to ~2^45 (≈ 9.7 hours in nanoseconds). Larger values clamp into the
// last bucket. The same layout serves nanosecond latencies, queue waits,
// and coalesced-batch sizes; only the unit interpretation differs.
//
// The zero value is ready to use. All methods are safe for concurrent
// use. Like the telemetry recorder's striped counters, concurrent Record
// calls land on independent atomic words almost always (different
// latencies → different buckets); the count/sum words are the only shared
// hot words, which matches the serving layer's per-connection fan-in.
type Hist struct {
	count   atomic.Uint64
	sum     atomic.Uint64
	buckets [HistNumBuckets]atomic.Uint64
}

// Histogram geometry. histExact small values get exact buckets;
// histSubBits mantissa bits split every octave above into 1<<histSubBits
// sub-buckets; histMaxExp caps the value range.
const (
	histExact   = 16 // values 0..15 recorded exactly
	histSubBits = 2  // 4 sub-buckets per power of two
	histSub     = 1 << histSubBits
	histMaxExp  = 45 // top octave ≈ 9.7h in ns; larger values overflow

	// HistNumBuckets is the fixed bucket count of every Hist; the final
	// bucket is the open-ended overflow cell.
	HistNumBuckets = histExact + (histMaxExp-histExactExp)*histSub + 1

	histExactExp = 4 // log2(histExact)
)

// histBucket maps a value to its bucket index.
func histBucket(v int64) int {
	if v < histExact {
		if v < 0 {
			return 0
		}
		return int(v)
	}
	e := bits.Len64(uint64(v)) - 1 // e >= histExactExp
	if e >= histMaxExp {
		return HistNumBuckets - 1
	}
	sub := int(uint64(v)>>(e-histSubBits)) & (histSub - 1)
	return histExact + (e-histExactExp)*histSub + sub
}

// HistUpperBound returns the inclusive upper bound of bucket i: every
// recorded value v with HistUpperBound(i-1) < v <= HistUpperBound(i)
// lands in bucket i. The final (overflow) bucket has no bound — render it
// as +Inf; this function returns MaxInt64 for it.
func HistUpperBound(i int) int64 {
	if i < histExact {
		return int64(i)
	}
	if i >= HistNumBuckets-1 {
		return int64(^uint64(0) >> 1)
	}
	e := histExactExp + (i-histExact)/histSub
	sub := (i - histExact) % histSub
	// The bucket holds values whose top bits are 1<<e | sub<<(e-histSubBits);
	// its upper bound is the last value before the next sub-bucket.
	return (int64(histSub+sub+1) << (e - histSubBits)) - 1
}

// Record adds one observation. Negative values clamp to zero (defensive:
// a monotonic-clock regression must not corrupt a bucket index).
func (h *Hist) Record(v int64) {
	if v < 0 {
		v = 0
	}
	h.count.Add(1)
	h.sum.Add(uint64(v))
	h.buckets[histBucket(v)].Add(1)
}

// RecordN adds n identical observations in one shot — the coalesced-run
// path, where every command in a run shares the run's wall latency.
func (h *Hist) RecordN(v int64, n uint64) {
	if n == 0 {
		return
	}
	if v < 0 {
		v = 0
	}
	h.count.Add(n)
	h.sum.Add(uint64(v) * n)
	h.buckets[histBucket(v)].Add(n)
}

// Count returns the number of recorded observations.
func (h *Hist) Count() uint64 { return h.count.Load() }

// Snapshot copies the histogram's current state. Like the telemetry
// snapshots, it is consistent-enough: each word is read atomically, the
// set is not read under a global lock.
func (h *Hist) Snapshot() HistSnapshot {
	var s HistSnapshot
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	return s
}

// HistSnapshot is a point-in-time copy of a Hist.
type HistSnapshot struct {
	Count   uint64
	Sum     uint64
	Buckets [HistNumBuckets]uint64
}

// Sub returns s - prev field-by-field with saturating subtraction, for
// interval (delta) reporting. The caller must pass a genuinely earlier
// snapshot of the same histogram.
func (s HistSnapshot) Sub(prev HistSnapshot) HistSnapshot {
	d := HistSnapshot{Count: satSub(s.Count, prev.Count), Sum: satSub(s.Sum, prev.Sum)}
	for i := range s.Buckets {
		d.Buckets[i] = satSub(s.Buckets[i], prev.Buckets[i])
	}
	return d
}

// Merge returns the bucket-wise sum of s and o (same geometry always, the
// layout is fixed), for collapsing per-dimension histograms into one.
func (s HistSnapshot) Merge(o HistSnapshot) HistSnapshot {
	m := HistSnapshot{Count: s.Count + o.Count, Sum: s.Sum + o.Sum}
	for i := range s.Buckets {
		m.Buckets[i] = s.Buckets[i] + o.Buckets[i]
	}
	return m
}

func satSub(a, b uint64) uint64 {
	if a < b {
		return 0
	}
	return a - b
}

// Quantile returns the q-quantile (0 < q <= 1) of the snapshot, linearly
// interpolated inside the winning bucket. The last bucket reports its
// lower bound. ok is false when the histogram is empty.
func (s HistSnapshot) Quantile(q float64) (v int64, ok bool) {
	if s.Count == 0 {
		return 0, false
	}
	rank := q * float64(s.Count)
	var cum float64
	for i, c := range s.Buckets {
		if c == 0 {
			continue
		}
		prev := cum
		cum += float64(c)
		if cum < rank {
			continue
		}
		lo := int64(0)
		if i > 0 {
			lo = HistUpperBound(i-1) + 1
		}
		if i == HistNumBuckets-1 {
			return lo, true // clamp bucket: report its lower bound
		}
		hi := HistUpperBound(i)
		frac := (rank - prev) / float64(c)
		return lo + int64(frac*float64(hi-lo)), true
	}
	return HistUpperBound(HistNumBuckets - 1), true
}

// Mean returns the mean observation; 0 when empty.
func (s HistSnapshot) Mean() int64 {
	if s.Count == 0 {
		return 0
	}
	return int64(s.Sum / s.Count)
}

// Octaves collapses the snapshot to per-power-of-two buckets for
// rendering: OctaveBounds()[i] is the inclusive upper bound of the
// returned counts[i], and every recorded value above the last bound sits
// in the final (+Inf) cell. Exporters render this coarse view — a stable,
// compact le-set — while quantiles keep the full sub-bucket resolution.
func (s HistSnapshot) Octaves() [histMaxExp - histExactExp + 2]uint64 {
	var out [histMaxExp - histExactExp + 2]uint64
	for i, c := range s.Buckets {
		if c == 0 {
			continue
		}
		switch {
		case i < histExact:
			out[0] += c
		case i == HistNumBuckets-1:
			out[len(out)-1] += c
		default:
			out[1+(i-histExact)/histSub] += c
		}
	}
	return out
}

// NumOctaves is the length of Octaves()/OctaveBounds(); the final cell is
// the +Inf bucket.
const NumOctaves = histMaxExp - histExactExp + 2

// OctaveBounds returns the inclusive upper bounds of the octave view; the
// final cell has no bound (+Inf).
func OctaveBounds() [NumOctaves - 1]int64 {
	var out [NumOctaves - 1]int64
	out[0] = histExact - 1
	for e := histExactExp; e < histMaxExp; e++ {
		out[1+e-histExactExp] = int64(1)<<(e+1) - 1
	}
	return out
}
