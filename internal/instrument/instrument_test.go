package instrument

import (
	"reflect"
	"sync"
	"testing"
	"testing/quick"
)

func TestOpStatsNilReceiverSafe(t *testing.T) {
	var s *OpStats
	// Every Inc helper must be a no-op on a nil receiver.
	s.IncCAS(true)
	s.IncCAS(false)
	s.IncBacklink()
	s.IncNext()
	s.IncCurr()
	s.IncHelp()
	s.IncRestart()
	s.IncAux()
}

func TestOpStatsCounting(t *testing.T) {
	s := &OpStats{}
	s.IncCAS(true)
	s.IncCAS(false)
	s.IncCAS(false)
	if s.CASAttempts != 3 || s.CASSuccesses != 1 {
		t.Fatalf("CAS counters: %+v", s)
	}
	s.IncBacklink()
	s.IncNext()
	s.IncNext()
	s.IncCurr()
	s.IncAux()
	if got := s.EssentialSteps(); got != 3+1+2+1+1 {
		t.Fatalf("EssentialSteps = %d", got)
	}
	s.IncHelp()
	s.IncRestart()
	if got := s.EssentialSteps(); got != 8 {
		t.Fatalf("help/restart must not be billed as essential: %d", got)
	}
}

func TestOpStatsAddReset(t *testing.T) {
	a := &OpStats{CASAttempts: 1, CASSuccesses: 1, BacklinkTraversals: 2,
		NextUpdates: 3, CurrUpdates: 4, HelpCalls: 5, Restarts: 6, AuxTraversals: 7}
	var sum OpStats
	sum.Add(a)
	sum.Add(a)
	if sum.CASAttempts != 2 || sum.AuxTraversals != 14 || sum.Restarts != 12 {
		t.Fatalf("Add: %+v", sum)
	}
	sum.Reset()
	if sum != (OpStats{}) {
		t.Fatalf("Reset: %+v", sum)
	}
}

func TestOpStatsAddIsLinearQuick(t *testing.T) {
	f := func(a, b OpStats) bool {
		var s1 OpStats
		s1.Add(&a)
		s1.Add(&b)
		var s2 OpStats
		s2.Add(&b)
		s2.Add(&a)
		return s1 == s2 && s1.EssentialSteps() == a.EssentialSteps()+b.EssentialSteps()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestVectorCoversEveryField pins the canonical counter vocabulary to the
// OpStats struct: every uint64 field must round-trip through Vector at a
// distinct index with a distinct exporter name. Adding a field to OpStats
// without extending the vocabulary fails here, which is what keeps live
// telemetry and benchmark accounting from diverging.
func TestVectorCoversEveryField(t *testing.T) {
	typ := reflect.TypeOf(OpStats{})
	if typ.NumField() != int(NumCounters) {
		t.Fatalf("OpStats has %d fields, vocabulary has %d counters",
			typ.NumField(), NumCounters)
	}
	for i := 0; i < typ.NumField(); i++ {
		var s OpStats
		reflect.ValueOf(&s).Elem().Field(i).SetUint(7)
		v := s.Vector()
		hits := 0
		for _, x := range v {
			if x == 7 {
				hits++
			}
		}
		if hits != 1 {
			t.Fatalf("field %s appears %d times in Vector", typ.Field(i).Name, hits)
		}
		var back OpStats
		back.FromVector(v)
		if back != s {
			t.Fatalf("field %s does not round-trip: %+v", typ.Field(i).Name, back)
		}
	}
	seen := map[string]bool{}
	for c, name := range CounterNames {
		if name == "" {
			t.Fatalf("counter %d has no name", c)
		}
		if seen[name] {
			t.Fatalf("duplicate counter name %q", name)
		}
		seen[name] = true
	}
}

func TestPointStrings(t *testing.T) {
	points := []Point{PtSearchDone, PtBeforeInsertCAS, PtAfterInsertCASFail,
		PtBeforeFlagCAS, PtBeforeMarkCAS, PtBeforePhysicalCAS, PtBacklinkStep,
		PtHelpFlagged, PtRestart, PtAfterUnlink}
	seen := map[string]bool{}
	for _, p := range points {
		s := p.String()
		if s == "" || s == "UnknownPoint" {
			t.Fatalf("point %d has no name", p)
		}
		if seen[s] {
			t.Fatalf("duplicate point name %q", s)
		}
		seen[s] = true
	}
	if Point(0).String() != "UnknownPoint" {
		t.Fatal("zero point should be unknown")
	}
}

func TestProcNilSafe(t *testing.T) {
	var p *Proc
	if p.StatsOrNil() != nil {
		t.Fatal("nil proc returned stats")
	}
	p.At(PtSearchDone) // must not panic
	p2 := &Proc{}
	p2.At(PtSearchDone) // nil hooks must not panic
}

func TestHookFuncDispatch(t *testing.T) {
	var mu sync.Mutex
	got := map[Point]int{}
	h := HookFunc(func(p Point, pid int) {
		mu.Lock()
		defer mu.Unlock()
		got[p] = pid
	})
	p := &Proc{ID: 42, Hooks: h}
	p.At(PtBeforeFlagCAS)
	if got[PtBeforeFlagCAS] != 42 {
		t.Fatalf("hook got %v", got)
	}
}
