package instrument

import (
	"math"
	"sync"
	"testing"
)

func TestHistBucketGeometry(t *testing.T) {
	// Exact range: identity.
	for v := int64(0); v < histExact; v++ {
		if got := histBucket(v); got != int(v) {
			t.Fatalf("histBucket(%d) = %d, want %d", v, got, v)
		}
		if got := HistUpperBound(int(v)); got != v {
			t.Fatalf("HistUpperBound(%d) = %d, want %d", v, got, v)
		}
	}
	// Negative values clamp into bucket 0.
	if histBucket(-5) != 0 {
		t.Fatalf("negative value must clamp to bucket 0")
	}
	// Buckets are contiguous and ordered: every value in
	// (HistUpperBound(i-1), HistUpperBound(i)] maps to bucket i.
	for i := 1; i < HistNumBuckets-1; i++ {
		lo, hi := HistUpperBound(i-1)+1, HistUpperBound(i)
		if lo > hi {
			t.Fatalf("bucket %d empty: lo %d > hi %d", i, lo, hi)
		}
		for _, v := range []int64{lo, hi, lo + (hi-lo)/2} {
			if got := histBucket(v); got != i {
				t.Fatalf("histBucket(%d) = %d, want %d (bounds %d..%d)", v, got, i, lo, hi)
			}
		}
	}
	// Relative quantization error stays under 2^-histSubBits.
	for _, v := range []int64{100, 1000, 12345, 1 << 20, 1<<40 + 12345} {
		hi := HistUpperBound(histBucket(v))
		lo := HistUpperBound(histBucket(v)-1) + 1
		if rel := float64(hi-lo) / float64(lo); rel > 1.0/float64(histSub)+1e-9 {
			t.Fatalf("bucket width for %d too wide: rel error %f", v, rel)
		}
	}
	// Values past the top octave land in the dedicated overflow bucket,
	// whose bound renders as +Inf.
	if histBucket(1<<uint(histMaxExp)) != HistNumBuckets-1 {
		t.Fatalf("2^%d must overflow", histMaxExp)
	}
	if histBucket(math.MaxInt64) != HistNumBuckets-1 {
		t.Fatalf("MaxInt64 must overflow")
	}
	if HistUpperBound(HistNumBuckets-1) != math.MaxInt64 {
		t.Fatalf("overflow bound must be MaxInt64")
	}
	// The last finite bucket is distinct from the overflow bucket.
	top := int64(1)<<uint(histMaxExp) - 1
	if got := histBucket(top); got != HistNumBuckets-2 {
		t.Fatalf("histBucket(2^%d-1) = %d, want %d", histMaxExp, got, HistNumBuckets-2)
	}
}

func TestHistRecordAndQuantile(t *testing.T) {
	var h Hist
	if _, ok := h.Snapshot().Quantile(0.5); ok {
		t.Fatal("empty histogram must report !ok")
	}
	for v := int64(1); v <= 1000; v++ {
		h.Record(v)
	}
	s := h.Snapshot()
	if s.Count != 1000 || s.Sum != 500500 {
		t.Fatalf("count/sum = %d/%d", s.Count, s.Sum)
	}
	if m := s.Mean(); m != 500 {
		t.Fatalf("mean = %d", m)
	}
	for _, tc := range []struct {
		q    float64
		want int64
	}{{0.5, 500}, {0.99, 990}, {0.999, 999}} {
		got, ok := s.Quantile(tc.q)
		if !ok {
			t.Fatalf("q%v !ok", tc.q)
		}
		// Log bucketing guarantees ~12.5% relative error.
		if math.Abs(float64(got-tc.want)) > 0.13*float64(tc.want) {
			t.Fatalf("q%v = %d, want ~%d", tc.q, got, tc.want)
		}
	}
}

func TestHistRecordN(t *testing.T) {
	var a, b Hist
	for i := 0; i < 7; i++ {
		a.Record(300)
	}
	b.RecordN(300, 7)
	b.RecordN(300, 0) // no-op
	if a.Snapshot() != b.Snapshot() {
		t.Fatalf("RecordN(v,7) must equal 7x Record(v)")
	}
}

func TestHistSubAndMerge(t *testing.T) {
	var h Hist
	h.Record(10)
	h.Record(100)
	before := h.Snapshot()
	h.Record(1000)
	d := h.Snapshot().Sub(before)
	if d.Count != 1 || d.Buckets[histBucket(1000)] != 1 {
		t.Fatalf("delta wrong: %+v", d)
	}
	m := before.Merge(d)
	if m != h.Snapshot() {
		t.Fatalf("merge(before, delta) must equal after")
	}
	// Sub saturates rather than wrapping.
	if z := before.Sub(h.Snapshot()); z.Count != 0 || z.Sum != 0 {
		t.Fatalf("reversed Sub must saturate to zero, got %+v", z)
	}
}

func TestHistOctaves(t *testing.T) {
	var h Hist
	h.Record(3)            // exact cell
	h.Record(20)           // octave e=4
	h.Record(40)           // octave e=5
	h.Record(45)           // same octave
	h.Record(math.MaxInt64) // overflow
	oct := h.Snapshot().Octaves()
	bounds := OctaveBounds()
	if len(oct) != NumOctaves || len(bounds) != NumOctaves-1 {
		t.Fatalf("octave lengths: %d / %d", len(oct), len(bounds))
	}
	if bounds[0] != histExact-1 {
		t.Fatalf("first bound = %d", bounds[0])
	}
	if oct[0] != 1 || oct[1] != 1 || oct[2] != 2 || oct[NumOctaves-1] != 1 {
		t.Fatalf("octave counts wrong: %v", oct)
	}
	// Bounds are strictly increasing and the octave cells partition the
	// fine buckets: total octave count equals total count.
	var total uint64
	for _, c := range oct {
		total += c
	}
	if total != h.Count() {
		t.Fatalf("octave total %d != count %d", total, h.Count())
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			t.Fatalf("bounds not increasing at %d: %d <= %d", i, bounds[i], bounds[i-1])
		}
	}
	// The last finite octave bound covers every finite bucket: a value at
	// the top of the last finite bucket is <= the last bound.
	if last := bounds[len(bounds)-1]; last != int64(1)<<uint(histMaxExp)-1 {
		t.Fatalf("last finite bound = %d", last)
	}
}

func TestHistConcurrent(t *testing.T) {
	var h Hist
	const goroutines, per = 8, 10000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			v := seed
			for i := 0; i < per; i++ {
				v = v*6364136223846793005 + 1442695040888963407
				h.Record(v & 0xfffff)
			}
		}(int64(g + 1))
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != goroutines*per {
		t.Fatalf("count = %d", s.Count)
	}
	var bucketTotal uint64
	for _, c := range s.Buckets {
		bucketTotal += c
	}
	if bucketTotal != s.Count {
		t.Fatalf("bucket total %d != count %d", bucketTotal, s.Count)
	}
}

func TestHistRecordZeroAlloc(t *testing.T) {
	var h Hist
	if n := testing.AllocsPerRun(1000, func() { h.Record(12345) }); n != 0 {
		t.Fatalf("Hist.Record allocates %v/op", n)
	}
	if n := testing.AllocsPerRun(1000, func() { h.RecordN(77, 3) }); n != 0 {
		t.Fatalf("Hist.RecordN allocates %v/op", n)
	}
}

func TestTraceRingBasics(t *testing.T) {
	r := NewTraceRing(3) // rounds up to 8
	if r.Cap() != 8 {
		t.Fatalf("cap = %d", r.Cap())
	}
	if got := r.Snapshot(0); len(got) != 0 {
		t.Fatalf("empty ring snapshot = %v", got)
	}
	for i := 1; i <= 5; i++ {
		r.Add(&TraceRecord{At: int64(i), Verb: uint32(i), Key: int64(i * 100),
			Batch: int64(i), WallNanos: int64(i * 10), Sampled: i%2 == 1, Slow: i == 4,
			CASAttempts: uint64(i), BackoffWaits: uint64(i * 2)})
	}
	if r.Written() != 5 {
		t.Fatalf("written = %d", r.Written())
	}
	recs := r.Snapshot(0)
	if len(recs) != 5 {
		t.Fatalf("len = %d", len(recs))
	}
	// Newest first.
	for i, rec := range recs {
		want := int64(5 - i)
		if rec.At != want || rec.Key != want*100 || rec.CASAttempts != uint64(want) ||
			rec.BackoffWaits != uint64(want*2) {
			t.Fatalf("rec[%d] = %+v, want At=%d", i, rec, want)
		}
		if rec.Sampled != (want%2 == 1) || rec.Slow != (want == 4) {
			t.Fatalf("rec[%d] flags wrong: %+v", i, rec)
		}
	}
	// max limits the result to the newest records.
	recs = r.Snapshot(2)
	if len(recs) != 2 || recs[0].At != 5 || recs[1].At != 4 {
		t.Fatalf("limited snapshot wrong: %+v", recs)
	}
}

func TestTraceRingOverwrite(t *testing.T) {
	r := NewTraceRing(8)
	for i := 1; i <= 20; i++ {
		r.Add(&TraceRecord{At: int64(i)})
	}
	recs := r.Snapshot(0)
	if len(recs) != 8 {
		t.Fatalf("len = %d", len(recs))
	}
	for i, rec := range recs {
		if rec.At != int64(20-i) {
			t.Fatalf("rec[%d].At = %d, want %d", i, rec.At, 20-i)
		}
	}
}

func TestTraceRingConcurrent(t *testing.T) {
	r := NewTraceRing(64)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				// Writers keep At == WallNanos so readers can check
				// records for internal consistency (no torn slots).
				v := int64(id*1_000_000 + i)
				r.Add(&TraceRecord{At: v, WallNanos: v, CASAttempts: uint64(v)})
			}
		}(g)
	}
	for i := 0; i < 200; i++ {
		for _, rec := range r.Snapshot(0) {
			if rec.At != rec.WallNanos || uint64(rec.At) != rec.CASAttempts {
				t.Errorf("torn record: %+v", rec)
			}
		}
	}
	close(stop)
	wg.Wait()
}

func TestTraceRingAddZeroAlloc(t *testing.T) {
	r := NewTraceRing(1024)
	rec := &TraceRecord{At: 1, Verb: 2, WallNanos: 3}
	if n := testing.AllocsPerRun(1000, func() { r.Add(rec) }); n != 0 {
		t.Fatalf("TraceRing.Add allocates %v/op", n)
	}
}
