// Package instrument provides the per-process instrumentation shared by
// every list and skip-list implementation in this repository: essential
// step counters for the paper's amortized-cost accounting (Section 3.4)
// and named synchronization points for realizing adversarial schedules
// (Section 3.1).
package instrument

// OpStats accumulates the paper's "essential steps". Section 3.4 argues
// that counting exactly these gives the running time up to a constant
// factor:
//
//   - C&S attempts (successful or not),
//   - backlink pointer traversals,
//   - next_node pointer updates inside searches, and
//   - curr_node pointer updates inside searches.
//
// Baseline implementations without backlinks (Harris, Valois) count their
// analogous recovery steps - search restarts and auxiliary-cell
// traversals - in Restarts and AuxTraversals so total work is comparable.
type OpStats struct {
	CASAttempts        uint64 // every C&S attempted, any type
	CASSuccesses       uint64 // C&S that changed shared state
	BacklinkTraversals uint64 // prev = prev.backlink steps (FR lists)
	NextUpdates        uint64 // next_node reassignments inside searches
	CurrUpdates        uint64 // curr_node advances inside searches
	HelpCalls          uint64 // helping-routine invocations (diagnostic)
	Restarts           uint64 // restart-from-head events (Harris-style)
	AuxTraversals      uint64 // auxiliary-cell steps (Valois-style)
	FingerHits         uint64 // finger searches started at the remembered node
	FingerMisses       uint64 // finger searches that fell back to head/top
	BackoffWaits       uint64 // adaptive-backoff wait events after repeated C&S failures
	ShardOps           uint64 // operations routed to a shard of a range-sharded map
	ConnAccepted       uint64 // network connections accepted by a serving layer
	ConnActive         uint64 // network connections currently open (gauge, not monotonic)
	ConnRejected       uint64 // connections shed at accept time (connection cap)
	CmdsCoalesced      uint64 // pipelined commands absorbed into batch calls
	CmdsSlow           uint64 // commands whose store execution crossed the slow-trace threshold
	ConnResp           uint64 // connections auto-detected as RESP2 by their first byte
	WireFlushes        uint64 // reply flushes (one vectored write per coalesced run)
	UnitsGrouped       uint64 // command units merged into cross-connection group batches
	EpochAdvances      uint64 // global-epoch advances of a reclamation domain (internal/ebr)
	NodesRecycled      uint64 // retired nodes returned to a free list after their grace period
	FreelistHits       uint64 // node constructions served from a free list (no heap allocation)
	FreelistMisses     uint64 // node constructions that fell back to the heap allocator
	StalledEpochs      uint64 // retirements abandoned to the GC because the epoch was stalled
	WALAppends         uint64 // mutation records published to the write-ahead log's hand-off ring
	WALFsyncs          uint64 // group-commit fsyncs by the write-ahead log's writer goroutine
	WALBytes           uint64 // framed record bytes written to write-ahead-log segments
	SnapshotKeys       uint64 // key/value pairs streamed into on-disk snapshots
}

// Counter indexes the essential-step vocabulary. The order is the canonical
// one shared by every consumer of OpStats: the telemetry layer's sharded
// counters, the exporters' metric names, and OpStats accumulation itself all
// use these indices, so a live metric and a benchmark counter cannot
// diverge.
type Counter int

const (
	CtrCASAttempts Counter = iota
	CtrCASSuccesses
	CtrBacklinkTraversals
	CtrNextUpdates
	CtrCurrUpdates
	CtrHelpCalls
	CtrRestarts
	CtrAuxTraversals
	CtrFingerHits
	CtrFingerMisses
	CtrBackoffWaits
	CtrShardOps
	CtrConnAccepted
	CtrConnActive
	CtrConnRejected
	CtrCmdsCoalesced
	CtrCmdsSlow
	CtrConnResp
	CtrWireFlushes
	CtrUnitsGrouped
	CtrEpochAdvances
	CtrNodesRecycled
	CtrFreelistHits
	CtrFreelistMisses
	CtrStalledEpochs
	CtrWALAppends
	CtrWALFsyncs
	CtrWALBytes
	CtrSnapshotKeys
	// NumCounters is the size of the vocabulary.
	NumCounters
)

// CounterNames gives each counter its canonical snake_case name, used
// verbatim (plus a _total suffix) by the Prometheus and expvar exporters.
var CounterNames = [NumCounters]string{
	CtrCASAttempts:        "cas_attempts",
	CtrCASSuccesses:       "cas_successes",
	CtrBacklinkTraversals: "backlink_traversals",
	CtrNextUpdates:        "next_updates",
	CtrCurrUpdates:        "curr_updates",
	CtrHelpCalls:          "help_calls",
	CtrRestarts:           "restarts",
	CtrAuxTraversals:      "aux_traversals",
	CtrFingerHits:         "finger_hits",
	CtrFingerMisses:       "finger_misses",
	CtrBackoffWaits:       "backoff_waits",
	CtrShardOps:           "shard_ops",
	CtrConnAccepted:       "conn_accepted",
	CtrConnActive:         "conn_active",
	CtrConnRejected:       "conn_rejected",
	CtrCmdsCoalesced:      "cmds_coalesced",
	CtrCmdsSlow:           "cmds_slow",
	CtrConnResp:           "conn_resp",
	CtrWireFlushes:        "wire_flushes",
	CtrUnitsGrouped:       "units_grouped",
	CtrEpochAdvances:      "ebr_epoch_advances",
	CtrNodesRecycled:      "nodes_recycled",
	CtrFreelistHits:       "freelist_hits",
	CtrFreelistMisses:     "freelist_misses",
	CtrStalledEpochs:      "ebr_stalled_epochs",
	CtrWALAppends:         "wal_appends",
	CtrWALFsyncs:          "wal_fsyncs",
	CtrWALBytes:           "wal_bytes",
	CtrSnapshotKeys:       "snapshot_keys",
}

// Vector is the array form of OpStats, indexed by Counter.
type Vector [NumCounters]uint64

// Vector returns the counters in canonical order.
func (s *OpStats) Vector() Vector {
	return Vector{
		CtrCASAttempts:        s.CASAttempts,
		CtrCASSuccesses:       s.CASSuccesses,
		CtrBacklinkTraversals: s.BacklinkTraversals,
		CtrNextUpdates:        s.NextUpdates,
		CtrCurrUpdates:        s.CurrUpdates,
		CtrHelpCalls:          s.HelpCalls,
		CtrRestarts:           s.Restarts,
		CtrAuxTraversals:      s.AuxTraversals,
		CtrFingerHits:         s.FingerHits,
		CtrFingerMisses:       s.FingerMisses,
		CtrBackoffWaits:       s.BackoffWaits,
		CtrShardOps:           s.ShardOps,
		CtrConnAccepted:       s.ConnAccepted,
		CtrConnActive:         s.ConnActive,
		CtrConnRejected:       s.ConnRejected,
		CtrCmdsCoalesced:      s.CmdsCoalesced,
		CtrCmdsSlow:           s.CmdsSlow,
		CtrConnResp:           s.ConnResp,
		CtrWireFlushes:        s.WireFlushes,
		CtrUnitsGrouped:       s.UnitsGrouped,
		CtrEpochAdvances:      s.EpochAdvances,
		CtrNodesRecycled:      s.NodesRecycled,
		CtrFreelistHits:       s.FreelistHits,
		CtrFreelistMisses:     s.FreelistMisses,
		CtrStalledEpochs:      s.StalledEpochs,
		CtrWALAppends:         s.WALAppends,
		CtrWALFsyncs:          s.WALFsyncs,
		CtrWALBytes:           s.WALBytes,
		CtrSnapshotKeys:       s.SnapshotKeys,
	}
}

// FromVector sets the counters from their canonical array form.
func (s *OpStats) FromVector(v Vector) {
	s.CASAttempts = v[CtrCASAttempts]
	s.CASSuccesses = v[CtrCASSuccesses]
	s.BacklinkTraversals = v[CtrBacklinkTraversals]
	s.NextUpdates = v[CtrNextUpdates]
	s.CurrUpdates = v[CtrCurrUpdates]
	s.HelpCalls = v[CtrHelpCalls]
	s.Restarts = v[CtrRestarts]
	s.AuxTraversals = v[CtrAuxTraversals]
	s.FingerHits = v[CtrFingerHits]
	s.FingerMisses = v[CtrFingerMisses]
	s.BackoffWaits = v[CtrBackoffWaits]
	s.ShardOps = v[CtrShardOps]
	s.ConnAccepted = v[CtrConnAccepted]
	s.ConnActive = v[CtrConnActive]
	s.ConnRejected = v[CtrConnRejected]
	s.CmdsCoalesced = v[CtrCmdsCoalesced]
	s.CmdsSlow = v[CtrCmdsSlow]
	s.ConnResp = v[CtrConnResp]
	s.WireFlushes = v[CtrWireFlushes]
	s.UnitsGrouped = v[CtrUnitsGrouped]
	s.EpochAdvances = v[CtrEpochAdvances]
	s.NodesRecycled = v[CtrNodesRecycled]
	s.FreelistHits = v[CtrFreelistHits]
	s.FreelistMisses = v[CtrFreelistMisses]
	s.StalledEpochs = v[CtrStalledEpochs]
	s.WALAppends = v[CtrWALAppends]
	s.WALFsyncs = v[CtrWALFsyncs]
	s.WALBytes = v[CtrWALBytes]
	s.SnapshotKeys = v[CtrSnapshotKeys]
}

// AddVector accumulates v into s.
func (s *OpStats) AddVector(v Vector) {
	cur := s.Vector()
	for i := range cur {
		cur[i] += v[i]
	}
	s.FromVector(cur)
}

// Essential reports whether the counter is billed as an essential step by
// the paper's amortized analysis (Section 3.4). CAS attempts, backlink
// traversals and next/curr updates are the FR list's essential steps;
// auxiliary-cell traversals are Valois's analogue. Help calls, restarts,
// C&S successes, the finger hit/miss classifiers, backoff waits, shard
// routing counts, the serving-layer connection/coalescing counters and
// the reclamation counters are diagnostic only (restart and fallback work
// is billed through the next/curr updates the search performs, a backoff
// wait performs no shared-memory step at all, the serving layer sits
// entirely above the structures the analysis covers, and memory
// reclamation is bookkeeping the paper leaves to the environment).
func (c Counter) Essential() bool {
	switch c {
	case CtrCASAttempts, CtrBacklinkTraversals, CtrNextUpdates,
		CtrCurrUpdates, CtrAuxTraversals:
		return true
	default:
		return false
	}
}

// Gauge reports whether the counter is a level, not a monotonic total:
// its value can go down as well as up. The only gauge in the vocabulary
// is conn_active, maintained by the serving layer as accepted minus
// closed. Exporters render gauges without the _total suffix and with the
// Prometheus gauge type; Snapshot.Sub's saturating subtraction makes a
// Delta of a gauge meaningless (read the Snapshot level instead).
func (c Counter) Gauge() bool { return c == CtrConnActive }

// EssentialSteps returns the total billed step count: the quantity the
// paper's amortized analysis bounds by O(n(S) + c(S)) for the FR list, and
// the comparable total for the baselines.
func (s *OpStats) EssentialSteps() uint64 {
	var total uint64
	for c, v := range s.Vector() {
		if Counter(c).Essential() {
			total += v
		}
	}
	return total
}

// Add accumulates o into s.
func (s *OpStats) Add(o *OpStats) { s.AddVector(o.Vector()) }

// Reset zeroes every counter.
func (s *OpStats) Reset() { *s = OpStats{} }

// The Inc* helpers tolerate a nil receiver so instrumented code paths cost
// a single predictable branch when metrics are disabled.

// IncCAS records one C&S attempt and, if success, one success.
func (s *OpStats) IncCAS(success bool) {
	if s == nil {
		return
	}
	s.CASAttempts++
	if success {
		s.CASSuccesses++
	}
}

// IncBacklink records one backlink traversal.
func (s *OpStats) IncBacklink() {
	if s != nil {
		s.BacklinkTraversals++
	}
}

// IncNext records one next_node pointer update.
func (s *OpStats) IncNext() {
	if s != nil {
		s.NextUpdates++
	}
}

// IncCurr records one curr_node pointer update.
func (s *OpStats) IncCurr() {
	if s != nil {
		s.CurrUpdates++
	}
}

// IncHelp records one helping-routine invocation.
func (s *OpStats) IncHelp() {
	if s != nil {
		s.HelpCalls++
	}
}

// IncRestart records one restart-from-head event.
func (s *OpStats) IncRestart() {
	if s != nil {
		s.Restarts++
	}
}

// IncAux records one auxiliary-cell traversal.
func (s *OpStats) IncAux() {
	if s != nil {
		s.AuxTraversals++
	}
}

// IncFinger records one finger-accelerated search start: hit means the
// search began at the finger's remembered node, miss that it fell back to
// the head (list) or top (skip list). The search work itself is billed
// through the usual next/curr/backlink counters; these two only classify
// where it started.
func (s *OpStats) IncFinger(hit bool) {
	if s == nil {
		return
	}
	if hit {
		s.FingerHits++
	} else {
		s.FingerMisses++
	}
}

// IncBackoff records one adaptive-backoff wait event: a retry loop that
// observed repeated C&S failures yielded (spun or rescheduled) before its
// next attempt. The wait itself performs no shared-memory steps, so it is
// diagnostic, not essential.
func (s *OpStats) IncBackoff() {
	if s != nil {
		s.BackoffWaits++
	}
}

// IncShard records n operations routed to a shard of a range-sharded map
// (one per point operation, the sub-run length per batch sub-run).
func (s *OpStats) IncShard(n uint64) {
	if s != nil {
		s.ShardOps += n
	}
}

// IncEpochAdvance records one successful global-epoch advance.
func (s *OpStats) IncEpochAdvance() {
	if s != nil {
		s.EpochAdvances++
	}
}

// IncRecycled records n retired nodes pushed onto a free list after their
// grace period elapsed.
func (s *OpStats) IncRecycled(n uint64) {
	if s != nil {
		s.NodesRecycled += n
	}
}

// IncFreelist records one free-list consultation by a node constructor:
// hit means the node was served from the free list, miss that construction
// fell back to the heap allocator.
func (s *OpStats) IncFreelist(hit bool) {
	if s == nil {
		return
	}
	if hit {
		s.FreelistHits++
	} else {
		s.FreelistMisses++
	}
}

// IncStalled records one retirement abandoned to the garbage collector
// because the reclamation epoch was stalled (a pinned-but-idle critical
// section kept the retire list at its cap).
func (s *OpStats) IncStalled() {
	if s != nil {
		s.StalledEpochs++
	}
}

// Point names a synchronization point inside the algorithms. The
// adversarial executions of Section 3.1 require stopping a process at an
// exact program point; hooks at these points make those schedules
// reproducible on a real Go runtime.
type Point int

// Synchronization points covering every C&S site plus the recovery paths.
const (
	// PtSearchDone fires when a search has located its (curr, next) pair
	// and is about to return.
	PtSearchDone Point = iota + 1
	// PtBeforeInsertCAS fires immediately before the insertion C&S.
	PtBeforeInsertCAS
	// PtAfterInsertCASFail fires after a failed insertion C&S.
	PtAfterInsertCASFail
	// PtBeforeFlagCAS fires immediately before the flagging C&S.
	PtBeforeFlagCAS
	// PtBeforeMarkCAS fires immediately before the marking C&S.
	PtBeforeMarkCAS
	// PtBeforePhysicalCAS fires immediately before the physical-deletion
	// C&S.
	PtBeforePhysicalCAS
	// PtBacklinkStep fires on every backlink traversal.
	PtBacklinkStep
	// PtHelpFlagged fires on entry to a HelpFlagged routine.
	PtHelpFlagged
	// PtRestart fires when an operation restarts its search from the
	// head (Harris-style recovery).
	PtRestart
	// PtAfterUnlink fires after a successful unlink C&S, before any
	// cleanup/normalization (Valois-style deletion).
	PtAfterUnlink
)

// String returns the point's name for diagnostics.
func (p Point) String() string {
	switch p {
	case PtSearchDone:
		return "SearchDone"
	case PtBeforeInsertCAS:
		return "BeforeInsertCAS"
	case PtAfterInsertCASFail:
		return "AfterInsertCASFail"
	case PtBeforeFlagCAS:
		return "BeforeFlagCAS"
	case PtBeforeMarkCAS:
		return "BeforeMarkCAS"
	case PtBeforePhysicalCAS:
		return "BeforePhysicalCAS"
	case PtBacklinkStep:
		return "BacklinkStep"
	case PtHelpFlagged:
		return "HelpFlagged"
	case PtRestart:
		return "Restart"
	case PtAfterUnlink:
		return "AfterUnlink"
	default:
		return "UnknownPoint"
	}
}

// Hooks receives control at named points during an operation run under a
// Proc. Implementations typically block the calling goroutine to realize a
// deterministic schedule. At must be safe for concurrent use.
type Hooks interface {
	At(p Point, pid int)
}

// HookFunc adapts a function to the Hooks interface.
type HookFunc func(p Point, pid int)

// At calls f(p, pid).
func (f HookFunc) At(p Point, pid int) { f(p, pid) }

// Proc carries per-process instrumentation through an operation: optional
// step counters and optional adversary hooks. The paper's model is a fixed
// set of processes; a Proc is this implementation's stand-in for one. A
// nil *Proc is valid and disables all instrumentation.
type Proc struct {
	// Stats, when non-nil, accumulates essential-step counts for every
	// operation run under this Proc.
	Stats *OpStats
	// Hooks, when non-nil, receives control at named synchronization
	// points.
	Hooks Hooks
	// ID identifies the process to hooks; purely informational.
	ID int
	// Retire, when non-nil, is called with each node this process
	// physically deletes - i.e. when its physical-deletion C&S is the one
	// that succeeds, which happens exactly once per node. Memory
	// reclamation schemes (internal/ebr) hang their retire step here.
	Retire func(node any)
	// Epoch, when non-nil, is an opaque epoch-pin token (*ebr.Pin installed
	// by the lockfree facades' PinProc): it tells a recycling structure
	// that the calling goroutine already holds a critical section on the
	// structure's reclamation domain, so per-operation pin/unpin can be
	// skipped - the pinned fast path. Single-goroutine state, like Stats.
	Epoch any
}

// StatsOrNil returns the Proc's counter set, tolerating a nil Proc.
func (p *Proc) StatsOrNil() *OpStats {
	if p == nil {
		return nil
	}
	return p.Stats
}

// At forwards to the Proc's hooks, tolerating nil Proc and nil Hooks.
func (p *Proc) At(pt Point) {
	if p != nil && p.Hooks != nil {
		p.Hooks.At(pt, p.ID)
	}
}

// RetireNode forwards a physically deleted node to the Proc's Retire
// callback, tolerating nil Proc and nil Retire.
func (p *Proc) RetireNode(node any) {
	if p != nil && p.Retire != nil {
		p.Retire(node)
	}
}
