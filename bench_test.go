// Package repro's top-level benchmarks regenerate every experiment in the
// paper-reproduction index (DESIGN.md section 4): one benchmark per
// experiment/figure. Custom metrics carry the paper's quantities
// (essential steps, chain lengths, height deviations) alongside ns/op.
//
// Run everything with:
//
//	go test -bench=. -benchmem
//
// cmd/lflbench runs the same experiments with full sweeps and prints the
// paper-style tables recorded in EXPERIMENTS.md.
package repro

import (
	"math/rand/v2"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/workload"
)

// BenchmarkE1AmortizedCost measures the essential steps per operation of
// the FR list as the list grows (the O(n) term) and as contention grows
// (the additive O(c) term). steps/op is the paper's billed quantity.
func BenchmarkE1AmortizedCost(b *testing.B) {
	for _, n := range []int{256, 1024, 4096} {
		b.Run("n="+itoa(n), func(b *testing.B) {
			l := core.NewList[int, int]()
			for k := 0; k < 2*n; k += 2 {
				l.Insert(nil, k, k)
			}
			st := &core.OpStats{}
			p := &core.Proc{Stats: st}
			rng := rand.New(rand.NewPCG(1, uint64(n)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				k := int(rng.Uint64N(uint64(2 * n)))
				switch i % 4 {
				case 0:
					l.Insert(p, k, k)
				case 1:
					l.Delete(p, k)
				default:
					l.Search(p, k)
				}
			}
			b.ReportMetric(float64(st.EssentialSteps())/float64(b.N), "steps/op")
		})
	}
}

// BenchmarkE2HarrisAdversary runs the Section 3.1 adversarial schedule
// once per iteration and reports the mean inserter cost; the fr/harris
// sub-benchmarks differ by orders of magnitude, reproducing the
// Omega(q*n^2) versus O(q*n) separation.
func BenchmarkE2HarrisAdversary(b *testing.B) {
	const q, n = 4, 512
	b.Run("fr", func(b *testing.B) {
		var mean float64
		for i := 0; i < b.N; i++ {
			res := experiments.RunE2(experiments.E2Config{Qs: []int{q}, Ns: []int{n}})
			mean = res.Rows[0].InserterSteps.Mean
		}
		b.ReportMetric(mean, "steps/insert")
	})
	b.Run("harris", func(b *testing.B) {
		var mean float64
		for i := 0; i < b.N; i++ {
			res := experiments.RunE2(experiments.E2Config{Qs: []int{q}, Ns: []int{n}})
			mean = res.Rows[1].InserterSteps.Mean
		}
		b.ReportMetric(mean, "steps/insert")
	})
}

// BenchmarkE3ValoisDegradation measures the cleanup debt left by m
// suspended Valois deletions: the first search pays Theta(m).
func BenchmarkE3ValoisDegradation(b *testing.B) {
	for _, m := range []int{64, 256} {
		b.Run("m="+itoa(m), func(b *testing.B) {
			var first, second float64
			for i := 0; i < b.N; i++ {
				res := experiments.RunE3(experiments.E3Config{Ms: []int{m}})
				first = res.Debt[0].FirstSearch
				second = res.Debt[0].SecondSearch
			}
			b.ReportMetric(first, "first-search-steps")
			b.ReportMetric(second, "second-search-steps")
		})
	}
}

// BenchmarkE4ListThroughput measures parallel throughput of every
// implementation on the balanced mix over a 4096-key range.
func BenchmarkE4ListThroughput(b *testing.B) {
	for _, impl := range experiments.E4Impls {
		b.Run(impl, func(b *testing.B) {
			d := experiments.NewDict(impl)
			for _, k := range workload.Prefill(4096) {
				experiments.ApplyOp(d, workload.Op{Kind: workload.OpInsert, Key: k})
			}
			var seed atomic.Int64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				gen := workload.NewGenerator(workload.Config{
					Mix: workload.Balanced, Dist: workload.Uniform,
					Range: 4096, Seed: 7,
				}, int(seed.Add(1)))
				for pb.Next() {
					experiments.ApplyOp(d, gen.Next())
				}
			})
		})
	}
}

// BenchmarkE5SkipListScaling measures skip-list search latency at growing
// sizes; ns/op should grow logarithmically.
func BenchmarkE5SkipListScaling(b *testing.B) {
	for _, n := range []int{1_000, 16_000, 256_000} {
		b.Run("n="+itoa(n), func(b *testing.B) {
			l := core.NewSkipList[int, int]()
			for k := 0; k < 2*n; k += 2 {
				l.Insert(nil, k, k)
			}
			st := &core.OpStats{}
			p := &core.Proc{Stats: st}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				l.Search(p, (i*7919)%(2*n))
			}
			b.ReportMetric(float64(st.EssentialSteps())/float64(b.N), "steps/op")
		})
	}
}

// BenchmarkE6TowerConstruction measures concurrent insertion (tower
// building) throughput and reports the resulting mean tower height, which
// must stay near the geometric expectation of 2.
func BenchmarkE6TowerConstruction(b *testing.B) {
	l := core.NewSkipList[int, int]()
	var next atomic.Int64
	b.RunParallel(func(pb *testing.PB) {
		p := &core.Proc{}
		for pb.Next() {
			k := int(next.Add(1))
			l.Insert(p, k, k)
		}
	})
	hist := l.Heights()
	var total, weighted float64
	for h1, c := range hist {
		total += float64(c)
		weighted += float64(c) * float64(h1+1)
	}
	if total > 0 {
		b.ReportMetric(weighted/total, "mean-height")
	}
}

// BenchmarkE7BacklinkChains builds the Section 3.1 rightward-growing chain
// and reports the victim's recovery walk for both implementations.
func BenchmarkE7BacklinkChains(b *testing.B) {
	for _, k := range []int{64, 256} {
		b.Run("k="+itoa(k), func(b *testing.B) {
			var noflagWalk, frWalk float64
			for i := 0; i < b.N; i++ {
				res := experiments.RunE7(experiments.E7Config{Ks: []int{k}})
				noflagWalk = float64(res.Rows[0].VictimWalk)
				frWalk = float64(res.Rows[1].VictimWalk)
			}
			b.ReportMetric(noflagWalk, "noflag-walk")
			b.ReportMetric(frWalk, "fr-walk")
		})
	}
}

// BenchmarkE8StallRobustness runs the delay-robustness experiment once per
// iteration and reports the ops other workers completed during the stall.
func BenchmarkE8StallRobustness(b *testing.B) {
	for _, impl := range []string{"fr", "locked"} {
		b.Run(impl, func(b *testing.B) {
			var ops float64
			for i := 0; i < b.N; i++ {
				res := experiments.RunE8(experiments.E8Config{
					Workers: 4, Stall: 50 * time.Millisecond, KeyRange: 512, Seed: 3,
				})
				idx := 0
				if impl == "locked" {
					idx = 1
				}
				ops = float64(res.Rows[idx].OpsDuring)
			}
			b.ReportMetric(ops, "ops-during-stall")
		})
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
