# Convenience entry points; see README.md "Development" for details.

.PHONY: check test vet race bench-json benchdiff

# The full local gate: vet + tier-1 (build, test) + race detector.
check:
	scripts/check.sh

test:
	go test ./...

vet:
	go vet ./...

race:
	go test -race ./...

# Run the instrumented throughput stage and write BENCH_lflbench.json.
bench-json:
	go run ./cmd/lflbench -exp bench

# Perf gate: tier-1 microbenchmarks on HEAD vs the merge base, failing on
# a >5% mean ns/op regression. See scripts/benchdiff.sh for knobs.
benchdiff:
	scripts/benchdiff.sh
