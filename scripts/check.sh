#!/bin/sh
# check.sh - the full local gate, mirroring what CI would run:
#
#   1. go vet over every package,
#   2. the tier-1 gate (build + tests, as recorded in ROADMAP.md),
#   3. the test suite again under the race detector,
#   4. targeted race passes over the parallelism-shaped packages
#      (internal/sharded and internal/server) at GOMAXPROCS=2 and 8,
#   5. a short lflstress -server smoke run: an in-process TCP server per
#      round, pipelined mixed workloads, linearizability-checked, with
#      the graceful drain asserted at each round's end,
#   6. (opt-in: BENCHDIFF=1) the benchdiff perf gate against the merge
#      base — off by default because microbenchmarks need a quiet machine
#      to be meaningful.
#
# Usage: scripts/check.sh  (or: make check; BENCHDIFF=1 make check)
set -eu

cd "$(dirname "$0")/.."

echo "== go vet ./... =="
go vet ./...

echo "== tier-1: go build ./... && go test ./... =="
go build ./...
go test ./...

echo "== race: go test -race ./... =="
go test -race ./...

# The sharded map's parallel batch fan-out changes shape with the core
# count (it is sequential unless at least two sub-runs are nonempty and the
# map was built with GOMAXPROCS > 1): race it at both a small and a large
# core count so both the sequential and the fanned-out paths are covered.
echo "== race: sharded fan-out at GOMAXPROCS=2 and GOMAXPROCS=8 =="
GOMAXPROCS=2 go test -race -count=1 ./internal/sharded
GOMAXPROCS=8 go test -race -count=1 ./internal/sharded

# The serving layer's reader/writer split, accept-time shedding, and
# shutdown drain are all goroutine-scheduling shaped: race them at both
# core counts too.
echo "== race: serving layer at GOMAXPROCS=2 and GOMAXPROCS=8 =="
GOMAXPROCS=2 go test -race -count=1 ./internal/server
GOMAXPROCS=8 go test -race -count=1 ./internal/server

# End-to-end serving smoke: lflstress in -server self mode starts a real
# TCP server per round, drives it with pipelined mixed workloads over
# several connections, checks every history for linearizability, and
# asserts the graceful drain loses no in-flight response. A few seconds of
# wall clock, bounded by the small op counts.
echo "== lflstress -server self smoke =="
go run ./cmd/lflstress -server self -threads 6 -ops 500 -keys 64 -rounds 4 -batch 8

if [ "${BENCHDIFF:-0}" = "1" ]; then
    echo "== benchdiff: perf gate =="
    scripts/benchdiff.sh
fi

echo "check: all gates passed"
