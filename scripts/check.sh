#!/bin/sh
# check.sh - the full local gate, mirroring what CI would run:
#
#   1. go vet over every package,
#   2. the tier-1 gate (build + tests, as recorded in ROADMAP.md),
#   3. the test suite again under the race detector,
#   4. (opt-in: BENCHDIFF=1) the benchdiff perf gate against the merge
#      base — off by default because microbenchmarks need a quiet machine
#      to be meaningful.
#
# Usage: scripts/check.sh  (or: make check; BENCHDIFF=1 make check)
set -eu

cd "$(dirname "$0")/.."

echo "== go vet ./... =="
go vet ./...

echo "== tier-1: go build ./... && go test ./... =="
go build ./...
go test ./...

echo "== race: go test -race ./... =="
go test -race ./...

# The sharded map's parallel batch fan-out changes shape with the core
# count (it is sequential unless at least two sub-runs are nonempty and the
# map was built with GOMAXPROCS > 1): race it at both a small and a large
# core count so both the sequential and the fanned-out paths are covered.
echo "== race: sharded fan-out at GOMAXPROCS=2 and GOMAXPROCS=8 =="
GOMAXPROCS=2 go test -race -count=1 ./internal/sharded
GOMAXPROCS=8 go test -race -count=1 ./internal/sharded

if [ "${BENCHDIFF:-0}" = "1" ]; then
    echo "== benchdiff: perf gate =="
    scripts/benchdiff.sh
fi

echo "check: all gates passed"
