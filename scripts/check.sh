#!/bin/sh
# check.sh - the full local gate, mirroring what CI would run:
#
#   1. go vet over every package,
#   2. the tier-1 gate (build + tests, as recorded in ROADMAP.md),
#   3. the test suite again under the race detector,
#   4. targeted race passes over the parallelism-shaped packages
#      (internal/sharded, internal/server, internal/instrument,
#      internal/ebr, internal/wal, internal/snapshot) at GOMAXPROCS=2
#      and 8,
#   5. a ten-second FuzzRESP run over the wire-protocol readers: hostile
#      bytes must fail requests, never hang or kill the serving goroutine,
#   6. a short lflstress -server smoke run: an in-process TCP server per
#      round, pipelined mixed workloads, linearizability-checked, with
#      the graceful drain asserted at each round's end — plus a
#      race-built kill-and-recover smoke: SIGKILL a wal-sync child
#      server mid-burst and verify every acked write survives recovery,
#   7. an observability smoke: a real lflserver with its admin listener
#      up, the /metrics, /debug/trace, and /debug/pprof surfaces curled
#      and sanity-checked, then a clean SIGTERM drain — plus, when a
#      redis-cli binary is on PATH, a real-client RESP round-trip
#      against the same server (skipped quietly otherwise),
#   8. (opt-in: BENCHDIFF=1) the benchdiff perf gate against the merge
#      base — off by default because microbenchmarks need a quiet machine
#      to be meaningful.
#
# Usage: scripts/check.sh  (or: make check; BENCHDIFF=1 make check)
set -eu

cd "$(dirname "$0")/.."

echo "== go vet ./... =="
go vet ./...

echo "== tier-1: go build ./... && go test ./... =="
go build ./...
go test ./...

echo "== race: go test -race ./... =="
go test -race ./...

# The sharded map's parallel batch fan-out changes shape with the core
# count (it is sequential unless at least two sub-runs are nonempty and the
# map was built with GOMAXPROCS > 1): race it at both a small and a large
# core count so both the sequential and the fanned-out paths are covered.
echo "== race: sharded fan-out at GOMAXPROCS=2 and GOMAXPROCS=8 =="
GOMAXPROCS=2 go test -race -count=1 ./internal/sharded
GOMAXPROCS=8 go test -race -count=1 ./internal/sharded

# The serving layer's reader/writer split, accept-time shedding, and
# shutdown drain are all goroutine-scheduling shaped: race them at both
# core counts too.
echo "== race: serving layer at GOMAXPROCS=2 and GOMAXPROCS=8 =="
GOMAXPROCS=2 go test -race -count=1 ./internal/server
GOMAXPROCS=8 go test -race -count=1 ./internal/server

# The instrument package's histograms and trace ring are written lock-free
# from every serving goroutine at once: race them at both core counts so
# the single-writer-ticket and torn-read-detection paths are both covered.
echo "== race: instrument at GOMAXPROCS=2 and GOMAXPROCS=8 =="
GOMAXPROCS=2 go test -race -count=1 ./internal/instrument
GOMAXPROCS=8 go test -race -count=1 ./internal/instrument

# The EBR layer is nothing but scheduling-shaped state: striped pins,
# try-locked retire slots, epoch advancement, and free-list stealing. Race
# it at both core counts — at 2 the stall paths (a preempted pinned
# goroutine blocking the epoch) dominate, at 8 the stripe-contention
# fallbacks do.
echo "== race: ebr at GOMAXPROCS=2 and GOMAXPROCS=8 =="
GOMAXPROCS=2 go test -race -count=1 ./internal/ebr
GOMAXPROCS=8 go test -race -count=1 ./internal/ebr

# The WAL's MPSC publish ring and single fsyncing writer, and the fuzzy
# snapshot's writer-concurrent Ascend scan, are scheduling-shaped in the
# same way: at 2 cores the producers starve behind the writer goroutine
# (ring-full backpressure on the publish path), at 8 the ticket
# contention and group-commit batching dominate.
echo "== race: wal + snapshot at GOMAXPROCS=2 and GOMAXPROCS=8 =="
GOMAXPROCS=2 go test -race -count=1 ./internal/wal ./internal/snapshot
GOMAXPROCS=8 go test -race -count=1 ./internal/wal ./internal/snapshot

# Protocol-robustness fuzz: ten seconds of arbitrary bytes against a
# served connection (seeds cover both dialects and every malformed-frame
# class the RESP reader distinguishes). The invariant is termination —
# hostile input may fail requests but must never panic or wedge the
# serving goroutines. -run '^$' skips the unit tests; the instrumented
# build dominates the wall clock, the fuzz window itself is 10s.
echo "== fuzz: FuzzRESP for 10s =="
go test -fuzz=FuzzRESP -fuzztime=10s -run '^$' ./internal/server

# End-to-end serving smoke: lflstress in -server self mode starts a real
# TCP server per round, drives it with pipelined mixed workloads over
# several connections, checks every history for linearizability, and
# asserts the graceful drain loses no in-flight response. A few seconds of
# wall clock, bounded by the small op counts.
echo "== lflstress -server self smoke =="
go run ./cmd/lflstress -server self -threads 6 -ops 500 -keys 64 -rounds 4 -batch 8

# Recycling smoke: the same linearizability checking with EBR-backed node
# recycling live — a small key space under heavy churn, so node identities
# repeat across the checked histories. The run fails unless identities
# actually recycled, so this asserts the machinery is on, not just tolerated.
echo "== lflstress -recycle smoke =="
go run ./cmd/lflstress -impl fr-skiplist -recycle -threads 6 -ops 500 -keys 16 -rounds 3 -batch 8
go run ./cmd/lflstress -server self -recycle -threads 4 -ops 400 -keys 32 -rounds 2 -batch 8

# Kill-and-recover smoke: lflstress re-execs itself as a wal-sync child
# server, SIGKILLs it mid-burst, restarts it from the same WAL directory,
# and verifies every client-acked write survived (and that in-flight
# unacked suffixes recovered to an admissible prefix). Run under -race:
# the parent's workers, the child's serving goroutines, and the WAL
# writer are all instrumented (the child is a re-exec of the same
# race-built binary).
echo "== lflstress -killrecover smoke (race) =="
go run -race ./cmd/lflstress -killrecover -threads 4 -ops 4000 -keys 32 -rounds 2

# Group-batching smoke: the same in-process server rounds with execution
# switched to cross-connection group batching — submission rings, the
# executor pool, and the ring-draining shutdown all on the checked path.
# Small key space over several workers makes cross-connection merges
# actually happen, and every history must still linearize.
echo "== lflstress -groupbatch smoke =="
go run ./cmd/lflstress -server self -groupbatch -threads 6 -ops 500 -keys 64 -rounds 3 -batch 8

# Observability smoke: a real lflserver with its admin listener and pprof
# enabled, every debug surface curled and sanity-checked, then a SIGTERM
# drain. Asserts the admin mux serves well-formed output end to end — the
# per-verb histograms on /metrics, sampled traces on /debug/trace, and the
# profiling surface — not just that the handlers exist.
echo "== lflserver observability smoke =="
obs_log=$(mktemp)
obs_out=$(mktemp)
go build -o "$obs_out.bin" ./cmd/lflserver
"$obs_out.bin" -addr 127.0.0.1:0 -admin-addr 127.0.0.1:0 -pprof -trace-sample 1 >"$obs_log" 2>&1 &
obs_pid=$!
trap 'kill "$obs_pid" 2>/dev/null || true; rm -f "$obs_log" "$obs_out" "$obs_out.bin"' EXIT
admin=""
for _ in $(seq 1 100); do
    admin=$(sed -n 's|^lflserver: admin endpoints on http://||p' "$obs_log")
    [ -n "$admin" ] && break
    kill -0 "$obs_pid" 2>/dev/null || { cat "$obs_log"; echo "obs-smoke: server died"; exit 1; }
    sleep 0.1
done
[ -n "$admin" ] || { cat "$obs_log"; echo "obs-smoke: admin address never appeared"; exit 1; }
addr=$(sed -n 's|^lflserver: serving .* on \([0-9.:]*\) .*$|\1|p' "$obs_log")
[ -n "$addr" ] || { cat "$obs_log"; echo "obs-smoke: protocol address never appeared"; exit 1; }
# Put traffic on the wire so the histograms and trace ring have content
# (curl's telnet mode is a raw TCP client: stdin to socket, socket to
# stdout).
replies=$(printf 'SET 1 a\nSET 2 b\nGET 1\nGET 3\nDEL 2\nPING\nQUIT\n' \
    | curl -s --max-time 10 "telnet://$addr")
echo "$replies" | grep -q '+PONG' \
    || { echo "obs-smoke: no +PONG from the protocol listener"; exit 1; }
# RESP smoke with a real Redis client, when one is installed: dialect
# detection is per-connection, so redis-cli talks RESP2 to the same
# listener the line-protocol traffic above just used. Skipped quietly
# when the binary is absent (the e2e RESP tests cover the protocol
# either way; this leg asserts interop with an independent client).
if command -v redis-cli >/dev/null 2>&1; then
    rhost=${addr%:*} rport=${addr##*:}
    rcli() { redis-cli -h "$rhost" -p "$rport" "$@"; }
    [ "$(rcli PING)" = "PONG" ] || { echo "resp-smoke: PING != PONG"; exit 1; }
    [ "$(rcli SET 7 hello)" = "OK" ] || { echo "resp-smoke: SET failed"; exit 1; }
    [ "$(rcli GET 7)" = "hello" ] || { echo "resp-smoke: GET != hello"; exit 1; }
    [ "$(rcli DEL 7)" = "1" ] || { echo "resp-smoke: DEL != 1"; exit 1; }
    echo "resp-smoke: redis-cli PING/SET/GET/DEL round-trip ok"
else
    echo "resp-smoke: redis-cli not installed, skipping"
fi
metrics=$(curl -sf "http://$admin/metrics")
echo "$metrics" | grep -q 'lockfree_server_cmd_latency_seconds_bucket{.*le="+Inf"' \
    || { echo "obs-smoke: /metrics missing per-verb latency histogram"; exit 1; }
echo "$metrics" | grep -q '^go_goroutines ' \
    || { echo "obs-smoke: /metrics missing runtime bridge"; exit 1; }
trace=$(curl -sf "http://$admin/debug/trace")
echo "$trace" | grep -q '"records"' \
    || { echo "obs-smoke: /debug/trace not well-formed: $trace"; exit 1; }
curl -sf "http://$admin/debug/pprof/goroutine?debug=1" | grep -q 'goroutine' \
    || { echo "obs-smoke: /debug/pprof/goroutine empty"; exit 1; }
kill -TERM "$obs_pid"
wait "$obs_pid" || { cat "$obs_log"; echo "obs-smoke: drain failed"; exit 1; }
grep -q 'drained cleanly' "$obs_log" || { cat "$obs_log"; echo "obs-smoke: no clean drain"; exit 1; }
trap - EXIT
rm -f "$obs_log" "$obs_out" "$obs_out.bin"
echo "obs-smoke: /metrics, /debug/trace, /debug/pprof all healthy"

if [ "${BENCHDIFF:-0}" = "1" ]; then
    echo "== benchdiff: perf gate =="
    scripts/benchdiff.sh
fi

echo "check: all gates passed"
