#!/bin/sh
# benchdiff.sh - the perf gate: runs the tier-1 microbenchmarks on the
# current tree and on a base commit, compares them, and fails on
#
#   - an allocs/op regression beyond its threshold (hard, always): a
#     structure that suddenly allocates is a bug even when it is not yet
#     slower, and allocation counts are deterministic - no noise excuse;
#   - a time regression beyond its threshold that benchstat judges
#     statistically significant (p < 0.05) - only when benchstat is
#     installed. Raw mean ns/op comparisons proved worthless on shared
#     boxes (A/A runs swing tens of percent), so without benchstat the
#     time columns are reported for the record but do not gate.
#
# Nothing is downloaded; the allocs gate is a self-contained awk
# comparison so the script works on boxes without benchstat.
#
# Usage: scripts/benchdiff.sh [base-ref]      (or: make benchdiff)
#
# Environment:
#   BENCHDIFF_BASE            base ref (default: merge-base with origin/main,
#                             falling back to HEAD~1)
#   BENCHDIFF_BENCH           -bench regex (default: the tier-1 set below)
#   BENCHDIFF_COUNT           -count per side (default 5)
#   BENCHDIFF_BENCHTIME       -benchtime per run (default 100ms)
#   BENCHDIFF_MAX_REGRESSION  allowed benchstat-significant slowdown in
#                             percent (default 5); without benchstat the
#                             time comparison is advisory only
#   BENCHDIFF_MAX_ALLOCS_REGRESSION  allowed mean allocs/op growth in
#                             percent (default 10); a baseline of 0
#                             allocs/op must stay at 0
#   BENCHDIFF_PKG             packages to bench (default ./internal/core
#                             ./internal/sharded); packages absent from the
#                             base commit are benched on the new side only
set -eu

cd "$(dirname "$0")/.."

BASE="${1:-${BENCHDIFF_BASE:-}}"
if [ -z "$BASE" ]; then
    BASE=$(git merge-base HEAD origin/main 2>/dev/null) || BASE=$(git rev-parse HEAD~1)
fi
if [ "$(git rev-parse "$BASE")" = "$(git rev-parse HEAD)" ]; then
    # Already sitting on the base (e.g. running on main itself): compare
    # against the previous commit so the gate still measures something.
    BASE=$(git rev-parse HEAD~1)
fi

BENCH="${BENCHDIFF_BENCH:-^(BenchmarkListSearch|BenchmarkListInsertDelete|BenchmarkSkipListSearch|BenchmarkSkipListInsertDelete|BenchmarkAllocs|BenchmarkClustered|BenchmarkSharded|BenchmarkPinUnpin|BenchmarkRetireRecycle|BenchmarkServerWire|BenchmarkWALPublish)}"
COUNT="${BENCHDIFF_COUNT:-5}"
BENCHTIME="${BENCHDIFF_BENCHTIME:-100ms}"
MAXREG="${BENCHDIFF_MAX_REGRESSION:-5}"
MAXALLOCREG="${BENCHDIFF_MAX_ALLOCS_REGRESSION:-10}"
PKG="${BENCHDIFF_PKG:-./internal/core ./internal/sharded ./internal/ebr ./internal/server ./internal/wal}"

TMP=$(mktemp -d)
WORKTREE="$TMP/base"
cleanup() {
    git worktree remove --force "$WORKTREE" 2>/dev/null || true
    rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

echo "== benchdiff: HEAD (worktree) vs $(git rev-parse --short "$BASE") =="
echo "   bench=$BENCH count=$COUNT benchtime=$BENCHTIME gate=${MAXREG}% allocs-gate=${MAXALLOCREG}%"

echo "-- new (current tree) --"
# $PKG is intentionally unquoted: it is a whitespace-separated package list.
go test -run '^$' -bench "$BENCH" -benchmem -count "$COUNT" -benchtime "$BENCHTIME" $PKG \
    | tee "$TMP/new.txt" | grep -c '^Benchmark' >/dev/null

echo "-- old ($BASE) --"
git worktree add --detach --quiet "$WORKTREE" "$BASE"
# Bench only the packages that exist at the base commit: a package added
# since then (e.g. internal/sharded the PR that introduced it) has nothing
# to regress against, and letting it fail the old-side run would silently
# skip the whole gate.
OLDPKG=""
for p in $PKG; do
    if [ -d "$WORKTREE/${p#./}" ]; then
        OLDPKG="$OLDPKG $p"
    else
        echo "   (skipping $p: absent at base — new-side only)"
    fi
done
if [ -z "$OLDPKG" ]; then
    echo "benchdiff: no benched package exists at the base commit; nothing to gate" >&2
    exit 0
fi
(cd "$WORKTREE" && go test -run '^$' -bench "$BENCH" -benchmem -count "$COUNT" -benchtime "$BENCHTIME" $OLDPKG) \
    | tee "$TMP/old.txt" | grep -c '^Benchmark' >/dev/null || {
    echo "benchdiff: base commit could not run the benchmark set; nothing to gate" >&2
    exit 0
}

TIMEFAILS=0
if command -v benchstat >/dev/null 2>&1; then
    echo "-- benchstat old new --"
    benchstat "$TMP/old.txt" "$TMP/new.txt" | tee "$TMP/stat.txt" || true
    # The time gate rides on benchstat's own significance test: a row shows
    # a percent delta only when the change is significant at its 0.05
    # level, and "~" otherwise. Fail on significant slowdowns beyond the
    # threshold in the time section (sec/op in current benchstat, time/op
    # in the v1 layout), ignoring the geomean summary row.
    TIMEFAILS=$(awk -v maxreg="$MAXREG" '
        /sec\/op|time\/op/ { sect = "time" }
        /allocs\/op|B\/op/ { sect = "other" }
        sect == "time" && !/geomean/ && match($0, /\+[0-9]+\.?[0-9]*%/) {
            pct = substr($0, RSTART + 1, RLENGTH - 2) + 0
            if (pct > maxreg) {
                printf "benchdiff: significant time regression: %s\n", $0 > "/dev/stderr"
                fails++
            }
        }
        END { print fails + 0 }
    ' "$TMP/stat.txt")
else
    echo "   (benchstat not installed: time columns below are advisory, allocs still gate)"
fi

# The allocs gate (and the advisory time report): average ns/op and
# allocs/op per benchmark name (CPU suffix stripped), joined on the names
# present on both sides; new benchmarks (e.g. BenchmarkAllocs* when the
# base predates them) are reported but cannot regress. Allocations past
# maxallocreg percent fail - and a benchmark whose baseline is 0 allocs/op
# fails on ANY new allocation, since a percentage of zero gates nothing.
# Nonzero baselines also require the mean to move by more than half an
# allocation: go test truncates allocs/op to an integer, so a benchmark
# whose true value sits at an integer boundary (e.g. the skip-list
# insert/delete pairs, whose geometric tower height averages exactly 2
# nodes) reports run means that flip between the neighboring integers
# with any timing perturbation — while a real leak adds at least one
# whole allocation per op and clears the half-alloc bar easily.
# The *ChurnRecycle benchmarks carry an absolute gate on top: they are the
# zero-allocation write-path guarantee (DESIGN.md §2.1), so they must
# report exactly 0 allocs/op on the new side even when the base predates
# them and the relative gate has nothing to compare. BenchmarkWALPublish
# carries the same absolute gate: the WAL's producer-side publish is the
# hot-path half of the durability design and must stay allocation-free.
# Mean time deltas are printed for the record; the significance-tested
# time gate above is the only one that can fail on time.
awk -v maxreg="$MAXREG" -v maxallocreg="$MAXALLOCREG" '
    /^Benchmark/ && /ns\/op/ {
        name = $1
        sub(/-[0-9]+$/, "", name)
        for (i = 2; i < NF; i++) {
            if ($(i + 1) == "ns/op") {
                if (FILENAME ~ /old\.txt$/) { oldsum[name] += $i; oldn[name]++ }
                else                        { newsum[name] += $i; newn[name]++ }
            }
            if ($(i + 1) == "allocs/op") {
                if (FILENAME ~ /old\.txt$/) { oldalloc[name] += $i; oldallocn[name]++ }
                else                        { newalloc[name] += $i; newallocn[name]++ }
            }
        }
    }
    END {
        fails = 0
        printf "%-44s %12s %12s %8s %10s %10s\n", "benchmark", "old ns/op", "new ns/op", "delta", "old allocs", "new allocs"
        for (name in newsum) {
            new = newsum[name] / newn[name]
            na = (name in newallocn) ? newalloc[name] / newallocn[name] : 0
            if (name ~ /ChurnRecycle/ && na > 0) {
                printf "benchdiff: %s allocates (%.2f allocs/op): the recycling write path must be 0\n", name, na > "/dev/stderr"
                fails++
            }
            if (name ~ /ServerWire(Group)?(Get|Del)/ && na > 0) {
                printf "benchdiff: %s allocates (%.2f allocs/op): the read/delete wire path must be 0 (grouped or not)\n", name, na > "/dev/stderr"
                fails++
            }
            if (name ~ /WALPublish/ && na > 0) {
                printf "benchdiff: %s allocates (%.2f allocs/op): the WAL publish path must be 0\n", name, na > "/dev/stderr"
                fails++
            }
            if (!(name in oldsum)) {
                printf "%-44s %12s %12.1f %8s %10s %10.2f\n", name, "-", new, "new", "-", na
                continue
            }
            old = oldsum[name] / oldn[name]
            oa = (name in oldallocn) ? oldalloc[name] / oldallocn[name] : 0
            delta = (new - old) / old * 100
            flag = ""
            if (delta > maxreg) { flag = "  << slower on mean (advisory)" }
            if ((oa == 0 && na > 0) || (oa > 0 && na - oa > 0.5 && (na - oa) / oa * 100 > maxallocreg)) {
                flag = flag "  << REGRESSION (allocs)"; fails++
            }
            printf "%-44s %12.1f %12.1f %+7.1f%% %10.2f %10.2f%s\n", name, old, new, delta, oa, na, flag
        }
        if (fails > 0) {
            printf "benchdiff: %d allocation regression(s) beyond %s%%\n", fails, maxallocreg > "/dev/stderr"
            exit 1
        }
        print "benchdiff: no allocation regression beyond " maxallocreg "%"
    }
' "$TMP/old.txt" "$TMP/new.txt"

if [ "$TIMEFAILS" -gt 0 ]; then
    echo "benchdiff: $TIMEFAILS benchstat-significant time regression(s) beyond ${MAXREG}%" >&2
    exit 1
fi
echo "benchdiff: no significant time regression beyond ${MAXREG}%"
